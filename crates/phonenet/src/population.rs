//! The phone population: all phone submodels plus population-level counts.
//!
//! Storage is struct-of-arrays: one packed state byte and one `u32`
//! infected-message counter per phone in two flat arrays, plus a shared
//! CSR topology ([`CsrGraph`]) holding every contact list. Per-phone
//! access goes through the [`PhoneRef`] / [`PhoneMut`] views, so the hot
//! infection loop walks three flat arrays instead of a `Vec` of structs —
//! ~13 bytes/phone of population state at rest (plus the topology), and
//! cache-linear scans for the population-level counts.

use std::sync::Arc;

use rand::seq::{IndexedRandom, SliceRandom};
use rand::Rng;

use mpvsim_topology::{CsrGraph, Graph};

use crate::arena::BufferPool;
use crate::phone::{
    initial_state, Health, PhoneId, PhoneMut, PhoneRef, FLAG_SILENCED, HEALTH_IMMUNIZED,
    HEALTH_INFECTED, HEALTH_MASK, HEALTH_SUSCEPTIBLE,
};

/// The full population of phone submodels.
///
/// Construction mirrors §4.1 of the paper: each node of the contact graph
/// becomes a phone; a random subset of the requested size is designated
/// vulnerable ("800 are randomly designated as susceptible"); contact
/// lists are the graph's adjacency lists and therefore reciprocal.
///
/// The contact topology is an [`Arc<CsrGraph>`]: phone `i`'s contacts are
/// the contiguous `u32` slice `topology.neighbors(i)`, shared (not cloned)
/// across every replication run on the same graph. A contact lookup is two
/// array reads and touches one shared allocation, instead of chasing a
/// per-phone `Vec` on every send.
#[derive(Debug, Clone)]
pub struct Population {
    /// Packed health + response flags, one byte per phone (see `phone.rs`).
    state: Vec<u8>,
    /// Infected messages received so far, one counter per phone.
    msgs: Vec<u32>,
    topology: Arc<CsrGraph>,
    infected_count: usize,
}

impl Population {
    /// Builds a population from a contact graph, designating a uniformly
    /// random `vulnerable_fraction` of phones as susceptible.
    ///
    /// # Panics
    ///
    /// Panics if `vulnerable_fraction` is outside `[0, 1]`.
    pub fn from_graph<R: Rng + ?Sized>(
        graph: &Graph,
        vulnerable_fraction: f64,
        rng: &mut R,
    ) -> Self {
        Self::from_csr(Arc::new(CsrGraph::from_graph(graph)), vulnerable_fraction, rng)
    }

    /// Builds a population directly over a shared CSR topology.
    ///
    /// Draws from `rng` exactly as [`Population::from_graph`] does, so the
    /// two constructors are trajectory-equivalent for the same graph.
    ///
    /// # Panics
    ///
    /// Panics if `vulnerable_fraction` is outside `[0, 1]`.
    pub fn from_csr<R: Rng + ?Sized>(
        topology: Arc<CsrGraph>,
        vulnerable_fraction: f64,
        rng: &mut R,
    ) -> Self {
        let n = topology.node_count();
        let state = vec![initial_state(false); n];
        let msgs = vec![0u32; n];
        Self::assemble(topology, vulnerable_fraction, rng, state, msgs)
    }

    /// Like [`Population::from_csr`], but takes the state arrays from
    /// `pool` (recycled allocations) instead of the global allocator.
    /// Bit-identical to the fresh constructor for the same inputs.
    ///
    /// # Panics
    ///
    /// Panics if `vulnerable_fraction` is outside `[0, 1]`.
    pub fn from_csr_pooled<R: Rng + ?Sized>(
        topology: Arc<CsrGraph>,
        vulnerable_fraction: f64,
        rng: &mut R,
        pool: &mut BufferPool,
    ) -> Self {
        let n = topology.node_count();
        let state = pool.take_u8(n, initial_state(false));
        let msgs = pool.take_u32(n, 0);
        Self::assemble(topology, vulnerable_fraction, rng, state, msgs)
    }

    fn assemble<R: Rng + ?Sized>(
        topology: Arc<CsrGraph>,
        vulnerable_fraction: f64,
        rng: &mut R,
        mut state: Vec<u8>,
        msgs: Vec<u32>,
    ) -> Self {
        assert!(
            (0.0..=1.0).contains(&vulnerable_fraction) && vulnerable_fraction.is_finite(),
            "vulnerable_fraction must be in [0, 1]"
        );
        let n = topology.node_count();
        let vulnerable_count = (vulnerable_fraction * n as f64).round() as usize;
        let mut indices: Vec<usize> = (0..n).collect();
        indices.shuffle(rng);
        for &i in indices.iter().take(vulnerable_count) {
            state[i] = initial_state(true);
        }
        Population { state, msgs, topology, infected_count: 0 }
    }

    /// Returns the state arrays to `pool` for the next replication. The
    /// shared topology `Arc` is dropped (not pooled — it lives in the
    /// caller's topology cache).
    pub fn recycle(self, pool: &mut BufferPool) {
        pool.recycle_u8(self.state);
        pool.recycle_u32(self.msgs);
    }

    /// The shared contact topology.
    pub fn topology(&self) -> &CsrGraph {
        &self.topology
    }

    /// The contact list of `id` (reciprocal by construction): a contiguous
    /// slice of the shared CSR adjacency, as raw `u32` phone numbers.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    #[inline]
    pub fn contacts(&self, id: PhoneId) -> &[u32] {
        self.topology.neighbors(id.0)
    }

    /// Number of contacts of `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    #[inline]
    pub fn degree(&self, id: PhoneId) -> usize {
        self.topology.degree(id.0)
    }

    /// Number of phones.
    pub fn len(&self) -> usize {
        self.state.len()
    }

    /// True when the population has no phones.
    pub fn is_empty(&self) -> bool {
        self.state.is_empty()
    }

    /// A by-value snapshot of the phone with the given number.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    #[inline]
    pub fn phone(&self, id: PhoneId) -> PhoneRef {
        PhoneRef { id, state: self.state[id.index()], msgs: self.msgs[id.index()] }
    }

    /// Mutable access to a phone. Use [`Population::infect`] for
    /// infections so the population count stays consistent.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    #[inline]
    pub fn phone_mut(&mut self, id: PhoneId) -> PhoneMut<'_> {
        PhoneMut { id, state: &mut self.state[id.index()], msgs: &mut self.msgs[id.index()] }
    }

    /// Iterates over all phones as snapshots, in numbering order.
    pub fn iter(&self) -> impl Iterator<Item = PhoneRef> + '_ {
        self.state.iter().zip(self.msgs.iter()).enumerate().map(|(i, (&state, &msgs))| PhoneRef {
            id: PhoneId(i as u32),
            state,
            msgs,
        })
    }

    /// Infects `id` if susceptible, maintaining the infected count.
    /// Returns whether a new infection occurred.
    pub fn infect(&mut self, id: PhoneId) -> bool {
        let newly = self.phone_mut(id).infect();
        if newly {
            self.infected_count += 1;
        }
        newly
    }

    /// Number of currently infected phones (the paper's headline measure).
    pub fn infected_count(&self) -> usize {
        self.infected_count
    }

    /// Number of phones still able to be infected.
    pub fn susceptible_count(&self) -> usize {
        self.state.iter().filter(|&&s| s & HEALTH_MASK == HEALTH_SUSCEPTIBLE).count()
    }

    /// Number of phones currently on the vulnerable platform and not yet
    /// immunized (susceptible or infected). Before any dynamics run this
    /// equals the designated vulnerable count.
    pub fn vulnerable_count(&self) -> usize {
        self.state
            .iter()
            .filter(|&&s| matches!(s & HEALTH_MASK, HEALTH_SUSCEPTIBLE | HEALTH_INFECTED))
            .count()
    }

    /// Number of immunized phones.
    pub fn immunized_count(&self) -> usize {
        self.state.iter().filter(|&&s| s & HEALTH_MASK == HEALTH_IMMUNIZED).count()
    }

    /// Number of infected phones that a patch has silenced.
    pub fn silenced_count(&self) -> usize {
        self.state.iter().filter(|&&s| s & FLAG_SILENCED != 0).count()
    }

    /// All phone ids, in numbering order.
    pub fn ids(&self) -> impl Iterator<Item = PhoneId> + '_ {
        (0..self.state.len()).map(PhoneId::from)
    }

    /// Resident heap bytes of the population state arrays plus the shared
    /// topology (the bytes/phone numerator reported by perfsuite).
    pub fn resident_bytes(&self) -> usize {
        std::mem::size_of_val(self.state.as_slice())
            + std::mem::size_of_val(self.msgs.as_slice())
            + self.topology.resident_bytes()
    }

    /// Picks a uniformly random vulnerable phone to seed the outbreak
    /// ("the infection starts with a single infected phone"). Returns
    /// `None` if no phone is susceptible.
    pub fn random_susceptible<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<PhoneId> {
        let candidates: Vec<PhoneId> =
            self.iter().filter(|p| p.is_susceptible()).map(|p| p.id()).collect();
        candidates.choose(rng).copied()
    }
}

/// Compatibility shim so existing health-based filters keep reading
/// naturally at call sites that matched on [`Health`].
impl Population {
    /// The health of `id` (convenience for `phone(id).health()`).
    pub fn health(&self, id: PhoneId) -> Health {
        self.phone(id).health()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpvsim_topology::GraphSpec;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    fn population(n: usize, frac: f64, seed: u64) -> Population {
        let mut r = rng(seed);
        let g = GraphSpec::erdos_renyi(n, 6.0).generate(&mut r).unwrap();
        Population::from_graph(&g, frac, &mut r)
    }

    #[test]
    fn vulnerable_fraction_exact_count() {
        let pop = population(1000, 0.8, 1);
        assert_eq!(pop.len(), 1000);
        assert_eq!(pop.vulnerable_count(), 800, "paper: exactly 800 susceptible of 1000");
        assert_eq!(pop.susceptible_count(), 800);
        assert_eq!(pop.infected_count(), 0);
    }

    #[test]
    fn contact_lists_are_reciprocal() {
        let pop = population(200, 0.8, 2);
        for id in pop.ids() {
            assert_eq!(pop.degree(id), pop.contacts(id).len());
            for &c in pop.contacts(id) {
                assert!(
                    pop.contacts(PhoneId(c)).contains(&id.0),
                    "{} lists {} but not vice versa",
                    id,
                    c
                );
            }
        }
    }

    #[test]
    fn infect_updates_count_once() {
        let mut pop = population(50, 1.0, 3);
        let id = PhoneId(0);
        assert!(pop.infect(id));
        assert!(!pop.infect(id), "double infection is a no-op");
        assert_eq!(pop.infected_count(), 1);
        assert_eq!(pop.susceptible_count(), 49);
    }

    #[test]
    fn infect_not_vulnerable_is_noop() {
        let mut pop = population(50, 0.0, 4);
        assert!(!pop.infect(PhoneId(5)));
        assert_eq!(pop.infected_count(), 0);
    }

    #[test]
    fn random_susceptible_returns_susceptible() {
        let pop = population(100, 0.5, 5);
        let mut r = rng(6);
        for _ in 0..20 {
            let id = pop.random_susceptible(&mut r).unwrap();
            assert!(pop.phone(id).is_susceptible());
        }
    }

    #[test]
    fn random_susceptible_none_when_all_immune() {
        let mut pop = population(10, 1.0, 7);
        for id in pop.ids().collect::<Vec<_>>() {
            pop.phone_mut(id).apply_patch();
        }
        assert_eq!(pop.immunized_count(), 10);
        let mut r = rng(8);
        assert!(pop.random_susceptible(&mut r).is_none());
    }

    #[test]
    fn vulnerable_designation_is_random() {
        // Different seeds should designate different subsets.
        let a = population(100, 0.5, 10);
        let b = population(100, 0.5, 11);
        let sa: Vec<bool> = a.iter().map(|p| p.is_susceptible()).collect();
        let sb: Vec<bool> = b.iter().map(|p| p.is_susceptible()).collect();
        assert_ne!(sa, sb);
    }

    #[test]
    fn fraction_bounds_checked() {
        let mut r = rng(12);
        let g = GraphSpec::complete(5).generate(&mut r).unwrap();
        let result = std::panic::catch_unwind(move || {
            let mut r2 = rng(13);
            Population::from_graph(&g, 1.5, &mut r2)
        });
        assert!(result.is_err());
    }

    #[test]
    fn empty_population() {
        let mut r = rng(14);
        let g = mpvsim_topology::Graph::new();
        let pop = Population::from_graph(&g, 0.8, &mut r);
        assert!(pop.is_empty());
        assert_eq!(pop.len(), 0);
    }

    /// The CSR and graph constructors must draw identically from the RNG
    /// and designate the same vulnerable set.
    #[test]
    fn from_csr_matches_from_graph() {
        let mut r0 = rng(21);
        let g = GraphSpec::power_law(300, 12.0).generate(&mut r0).unwrap();

        let mut ra = rng(22);
        let a = Population::from_graph(&g, 0.8, &mut ra);
        let mut rb = rng(22);
        let b = Population::from_csr(Arc::new(CsrGraph::from_graph(&g)), 0.8, &mut rb);

        let sa: Vec<u8> = a.state.clone();
        let sb: Vec<u8> = b.state.clone();
        assert_eq!(sa, sb);
        assert_eq!(ra.random::<u64>(), rb.random::<u64>(), "RNG state must match after build");
    }

    /// Pooled construction is bit-identical to fresh construction, even
    /// when the recycled buffers held stale state from a prior (longer)
    /// replication.
    #[test]
    fn pooled_population_is_bit_identical() {
        let mut r0 = rng(31);
        let g = GraphSpec::erdos_renyi(120, 8.0).generate(&mut r0).unwrap();
        let csr = Arc::new(CsrGraph::from_graph(&g));

        let mut pool = BufferPool::new();
        // Poison the pool with a larger, mutated population.
        let mut r1 = rng(32);
        let mut stale = Population::from_csr_pooled(csr.clone(), 1.0, &mut r1, &mut pool);
        for id in stale.ids().collect::<Vec<_>>() {
            stale.infect(id);
            stale.phone_mut(id).record_infected_message();
        }
        stale.recycle(&mut pool);
        assert_eq!(pool.pooled_buffers(), 2);

        let mut rf = rng(33);
        let fresh = Population::from_csr(csr.clone(), 0.8, &mut rf);
        let mut rp = rng(33);
        let pooled = Population::from_csr_pooled(csr, 0.8, &mut rp, &mut pool);
        assert_eq!(fresh.state, pooled.state);
        assert_eq!(fresh.msgs, pooled.msgs);
        assert_eq!(fresh.infected_count(), pooled.infected_count());
        assert_eq!(rf.random::<u64>(), rp.random::<u64>());
    }

    #[test]
    fn resident_bytes_scales_with_state_arrays() {
        let pop = population(100, 0.8, 41);
        let expected = 100 * (1 + 4) + pop.topology().resident_bytes();
        assert_eq!(pop.resident_bytes(), expected);
    }
}
