//! Runs the patch-rollout-order extension study: uniform (the paper's
//! semantics) versus hubs-first patch distribution.
fn main() {
    mpvsim_cli::figure_main(
        "Extension — Patch Rollout Order: Uniform vs Hubs-First",
        mpvsim_core::figures::rollout_order_study,
    );
}
