//! Integration tests of the response-time bounds solver through the
//! facade crate: the public `mpvsim-bounds/1` query API must be
//! deterministic (two fresh stores for the same query end up
//! byte-identical), cache-correct (a repeated query is answered from
//! the store), and analytically anchored — the mean-field ODE bracket
//! must contain the DES-confirmed critical value whenever the search
//! converges without endpoint expansion.

use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};

use proptest::prelude::*;

use mpvsim::prelude::*;

/// A deliberately small scenario: Virus 3 dynamics on a tiny
/// Erdős–Rényi graph with a short horizon, so each DES replication is
/// milliseconds and the solver's whole funnel can run under proptest.
fn tiny_scenario(phones: usize, mean_degree: f64, detect_threshold: u64) -> ScenarioConfig {
    let mut c = ScenarioConfig::baseline(VirusProfile::virus3());
    c.population = PopulationConfig {
        topology: GraphSpec::erdos_renyi(phones, mean_degree),
        vulnerable_fraction: 0.8,
    };
    c.behavior.read_delay = DelaySpec::constant(SimDuration::from_mins(5));
    c.horizon = SimDuration::from_hours(6);
    c.detect_threshold = detect_threshold;
    c
}

fn quick_confirm() -> ConfirmPolicy {
    ConfirmPolicy { min_reps: 2, max_reps: 3, min_half_width: 1.0 }
}

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mpvsim-bounds-it-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// Every file under `dir`, as relative path → raw bytes.
fn store_tree(dir: &Path) -> BTreeMap<String, Vec<u8>> {
    fn walk(root: &Path, dir: &Path, out: &mut BTreeMap<String, Vec<u8>>) {
        for entry in fs::read_dir(dir).expect("readable store dir") {
            let path = entry.expect("dir entry").path();
            if path.is_dir() {
                walk(root, &path, out);
            } else {
                let rel = path.strip_prefix(root).expect("under root");
                out.insert(rel.to_string_lossy().into_owned(), fs::read(&path).expect("read"));
            }
        }
    }
    let mut out = BTreeMap::new();
    walk(dir, dir, &mut out);
    out
}

#[test]
fn repeated_queries_are_byte_identical_across_stores() {
    let spec = BoundsSpec::new("it-determinism", BoundsKnob::ScanDelay, tiny_scenario(40, 6.0, 5))
        .with_search(SearchRange { min: 900, max: 28_800, tolerance: 1800 })
        .with_confirm(quick_confirm());
    let (dir_a, dir_b) = (scratch("det-a"), scratch("det-b"));

    let first = solve_bounds(&spec, &dir_a, &BoundsOptions::default(), |_| {}).expect("solve a");
    let replay = solve_bounds(&spec, &dir_a, &BoundsOptions::default(), |_| {}).expect("replay a");
    let second = solve_bounds(&spec, &dir_b, &BoundsOptions::default(), |_| {}).expect("solve b");

    assert!(!first.cached, "a fresh store cannot be a cache hit");
    assert!(replay.cached, "the same store must answer the repeat from disk");
    assert!(!second.cached);
    assert_eq!(first.report, replay.report);
    assert_eq!(first.report, second.report);

    // The whole store — manifest, per-value evaluations, progress log
    // and report — must be byte-for-byte identical across machines or
    // runs, which is what lets `mpvsim serve` answer with the stored
    // report verbatim.
    let (tree_a, tree_b) = (store_tree(&dir_a), store_tree(&dir_b));
    assert_eq!(
        tree_a.keys().collect::<Vec<_>>(),
        tree_b.keys().collect::<Vec<_>>(),
        "store layouts diverged"
    );
    for (path, bytes) in &tree_a {
        assert_eq!(Some(bytes), tree_b.get(path), "{path} differs between stores");
    }

    let _ = fs::remove_dir_all(&dir_a);
    let _ = fs::remove_dir_all(&dir_b);
}

#[test]
fn converged_report_is_internally_consistent() {
    // The 5 % containment target needs room to bite: on a toy graph the
    // threshold is only a phone or two, so this test runs the paper's
    // baseline scenario at a reduced population instead.
    let mut scenario = ScenarioConfig::baseline(VirusProfile::virus3());
    scenario.population = PopulationConfig::paper_default(150);
    let spec = BoundsSpec::new("it-shape", BoundsKnob::ScanDelay, scenario)
        .with_search(SearchRange { min: 900, max: 86_400, tolerance: 1800 })
        .with_confirm(quick_confirm());
    let dir = scratch("shape");
    let run = solve_bounds(&spec, &dir, &BoundsOptions::default(), |_| {}).expect("solve");
    let report = &run.report;

    assert_eq!(report.spec_hash, spec.content_hash());
    assert_eq!(report.outcome, BoundsOutcome::Converged);
    let critical = report.critical.expect("converged search names a critical value");
    let violated = report.violated_at.expect("and the first violated probe");
    assert!(critical >= spec.search.min && critical <= spec.search.max);
    assert!(violated > critical && violated - critical <= spec.search.tolerance);

    // The evaluation ledger backs the headline numbers: the critical
    // value was confirmed contained, the violated value confirmed not,
    // and the advertised effort equals the ledger's.
    let by_value: BTreeMap<u64, _> = report.evaluations.iter().map(|e| (e.value, e)).collect();
    assert!(by_value[&critical].contained);
    assert!(!by_value[&violated].contained);
    assert_eq!(report.total_reps, report.evaluations.iter().map(|e| e.reps).sum::<u64>());

    let _ = fs::remove_dir_all(&dir);
}

proptest! {
    // Each case runs a full bracket → confirm → bisect funnel, so keep
    // the case count modest; the tiny scenario keeps each one fast.
    #![proptest_config(ProptestConfig { cases: 6, ..ProptestConfig::default() })]

    /// The headline analytic claim: the ODE-derived search bracket
    /// contains the DES-confirmed critical value. When the DES
    /// disagrees with the proxy the solver expands the bracket and
    /// flags it, so the invariant `bracket_lo ≤ critical ≤ bracket_hi`
    /// must hold on the *final* bracket unconditionally — and the ODE
    /// estimate itself must sit inside the search range.
    #[test]
    fn ode_bracket_contains_the_des_critical_value(
        phones in 32usize..56,
        mean_degree in 4.0f64..8.0,
        detect in 3u64..8,
        scan_knob in any::<bool>(),
        case in 0u32..1_000_000,
    ) {
        let knob = if scan_knob { BoundsKnob::ScanDelay } else { BoundsKnob::PatchDelay };
        let spec = BoundsSpec::new(
            "it-bracket",
            knob,
            tiny_scenario(phones, mean_degree, detect),
        )
        .with_search(SearchRange { min: 900, max: 57_600, tolerance: 3600 })
        .with_confirm(quick_confirm());
        let dir = scratch(&format!("prop-{case}"));
        let run = solve_bounds(&spec, &dir, &BoundsOptions::default(), |_| {})
            .expect("tiny bounds query solves");
        let report = run.report;
        let _ = fs::remove_dir_all(&dir);

        prop_assert!(report.ode_critical >= spec.search.min);
        prop_assert!(report.ode_critical <= spec.search.max);
        prop_assert!(report.bracket_lo <= report.bracket_hi);
        match report.outcome {
            BoundsOutcome::Converged => {
                let critical = report.critical.expect("converged ⇒ critical");
                prop_assert!(
                    report.bracket_lo <= critical && critical <= report.bracket_hi,
                    "critical {critical} outside final bracket [{}, {}] (expanded: {})",
                    report.bracket_lo,
                    report.bracket_hi,
                    report.bracket_expanded,
                );
            }
            // Degenerate outbreaks are legal draws: containment can
            // hold everywhere or nowhere in the search range. The
            // solver must say which endpoint failed rather than invent
            // a critical value.
            BoundsOutcome::BelowMin => prop_assert!(report.critical.is_none()),
            BoundsOutcome::AboveMax => {
                prop_assert_eq!(report.critical, Some(spec.search.max));
            }
        }
    }
}
