//! The 2-D world: points in meters inside a rectangular arena.

use rand::{Rng, RngExt};
use serde::{Deserialize, Serialize};

/// A position in the arena, in meters.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Point {
    /// Horizontal coordinate, meters.
    pub x: f64,
    /// Vertical coordinate, meters.
    pub y: f64,
}

impl Point {
    /// Creates a point.
    pub const fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }

    /// Euclidean distance to `other`.
    pub fn distance(self, other: Point) -> f64 {
        self.distance_squared(other).sqrt()
    }

    /// Squared Euclidean distance (cheaper for radius comparisons).
    pub fn distance_squared(self, other: Point) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx * dx + dy * dy
    }
}

/// A rectangular world `[0, width] × [0, height]`, in meters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Arena {
    width: f64,
    height: f64,
}

impl Arena {
    /// Creates an arena.
    ///
    /// # Errors
    ///
    /// Returns a description when either dimension is non-positive or
    /// non-finite.
    pub fn new(width: f64, height: f64) -> Result<Self, String> {
        if !(width.is_finite() && height.is_finite() && width > 0.0 && height > 0.0) {
            return Err(format!(
                "arena dimensions must be positive and finite, got {width}×{height}"
            ));
        }
        Ok(Arena { width, height })
    }

    /// Arena width in meters.
    pub fn width(&self) -> f64 {
        self.width
    }

    /// Arena height in meters.
    pub fn height(&self) -> f64 {
        self.height
    }

    /// True when `p` lies inside the arena (inclusive of borders).
    pub fn contains(&self, p: Point) -> bool {
        (0.0..=self.width).contains(&p.x) && (0.0..=self.height).contains(&p.y)
    }

    /// A uniformly random point inside the arena.
    pub fn random_point<R: Rng + ?Sized>(&self, rng: &mut R) -> Point {
        Point::new(rng.random::<f64>() * self.width, rng.random::<f64>() * self.height)
    }

    /// Clamps `p` onto the arena.
    pub fn clamp(&self, p: Point) -> Point {
        Point::new(p.x.clamp(0.0, self.width), p.y.clamp(0.0, self.height))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn distances() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(3.0, 4.0);
        assert!((a.distance(b) - 5.0).abs() < 1e-12);
        assert!((a.distance_squared(b) - 25.0).abs() < 1e-12);
        assert_eq!(a.distance(a), 0.0);
    }

    #[test]
    fn arena_rejects_bad_dimensions() {
        assert!(Arena::new(0.0, 10.0).is_err());
        assert!(Arena::new(10.0, -1.0).is_err());
        assert!(Arena::new(f64::NAN, 10.0).is_err());
        assert!(Arena::new(f64::INFINITY, 10.0).is_err());
        assert!(Arena::new(100.0, 50.0).is_ok());
    }

    #[test]
    fn contains_and_clamp() {
        let a = Arena::new(100.0, 50.0).unwrap();
        assert!(a.contains(Point::new(0.0, 0.0)));
        assert!(a.contains(Point::new(100.0, 50.0)));
        assert!(!a.contains(Point::new(100.1, 10.0)));
        assert!(!a.contains(Point::new(-0.1, 10.0)));
        let c = a.clamp(Point::new(150.0, -3.0));
        assert_eq!(c, Point::new(100.0, 0.0));
    }

    #[test]
    fn random_points_inside_and_spread_out() {
        let a = Arena::new(200.0, 100.0).unwrap();
        let mut rng = StdRng::seed_from_u64(9);
        let pts: Vec<Point> = (0..1000).map(|_| a.random_point(&mut rng)).collect();
        assert!(pts.iter().all(|&p| a.contains(p)));
        // Both halves of each axis get visited.
        assert!(pts.iter().any(|p| p.x < 100.0) && pts.iter().any(|p| p.x > 100.0));
        assert!(pts.iter().any(|p| p.y < 50.0) && pts.iter().any(|p| p.y > 50.0));
    }
}
