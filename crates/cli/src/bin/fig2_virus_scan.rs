//! Deprecated shim: forwards to `mpvsim study fig2_virus_scan`.
fn main() {
    mpvsim_cli::commands::deprecated_shim("fig2_virus_scan");
}
