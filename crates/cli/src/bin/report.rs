//! Verifies every encoded paper claim against a fresh run and prints a
//! PASS/FAIL scorecard. Exit code 1 if any claim fails.
//!
//! ```text
//! cargo run --release -p mpvsim-cli --bin report -- --reps 5
//! ```

fn main() {
    let opts = match mpvsim_cli::parse_options(std::env::args().skip(1))
        .and_then(|cli| cli.figure_with_observer())
    {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };
    eprintln!(
        "verifying paper claims: {} replications, seed {}, population {} …",
        opts.reps, opts.master_seed, opts.population
    );
    match mpvsim_core::claims::verify_all(&opts) {
        Ok(verdicts) => {
            let mut failures = 0;
            println!("{:<18} {:<6} claim / measured", "id", "result");
            for v in &verdicts {
                println!(
                    "{:<18} {:<6} {}\n{:<25} {}",
                    v.id,
                    if v.pass { "PASS" } else { "FAIL" },
                    v.claim,
                    "",
                    v.measured
                );
                if !v.pass {
                    failures += 1;
                }
            }
            println!(
                "\n{} of {} claims held in this run",
                verdicts.len() - failures,
                verdicts.len()
            );
            if failures > 0 {
                std::process::exit(1);
            }
        }
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(1);
        }
    }
}
