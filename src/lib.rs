//! # mpvsim — mobile phone virus propagation & response simulator
//!
//! A reproduction of *"Quantifying the Effectiveness of Mobile Phone Virus
//! Response Mechanisms"* (E. Van Ruitenbeek, T. Courtney, W. H. Sanders,
//! F. Stevens — DSN 2007): a parameterized stochastic simulation of
//! MMS-borne viruses spreading through a population of mobile phones, and
//! of the six response mechanisms the paper evaluates against them.
//!
//! This crate is the facade: it re-exports the workspace's public API.
//!
//! | crate | role |
//! |---|---|
//! | [`des`] | discrete-event simulation engine (Möbius-executor substitute) |
//! | [`topology`] | contact-network generation & analysis (NGCE substitute) |
//! | [`phonenet`] | phones, contact books, MMS messages, gateway bookkeeping |
//! | [`stats`] | time-series aggregation, summaries, CSV / ASCII rendering |
//! | [`mobility`] | random-waypoint mobility + proximity index (Bluetooth extension) |
//! | [`core`] | the virus model, the four test-case viruses, the six response mechanisms, and the per-figure experiment harness |
//!
//! ## Quick start
//!
//! ```rust
//! use mpvsim::prelude::*;
//!
//! // Paper baseline: Virus 1 on 1000 phones — shrunk here to keep the
//! // doctest fast.
//! let mut config = ScenarioConfig::baseline(VirusProfile::virus1());
//! config.population = PopulationConfig::paper_default(150);
//! config.horizon = SimDuration::from_hours(48);
//!
//! let result = run_scenario(&config, 42)?;
//! println!("infected after 48 h: {}", result.final_infected);
//!
//! // Add a gateway signature scan with a 6-hour activation delay.
//! let response = ResponseConfig::none()
//!     .with_signature_scan(SignatureScan { activation_delay: SimDuration::from_hours(6) });
//! let protected = run_scenario(&config.clone().with_response(response), 42)?;
//! assert!(protected.final_infected <= result.final_infected);
//! # Ok::<(), mpvsim::core::ConfigError>(())
//! ```
//!
//! ## Reproducing the paper's figures
//!
//! Each figure of the evaluation section has a definition in
//! [`core::figures`], a stable name in the [`core::studies`] registry,
//! and is runnable through the unified `mpvsim` binary:
//!
//! ```text
//! cargo run --release -p mpvsim-cli --bin mpvsim -- study fig1_baseline
//! cargo run --release -p mpvsim-cli --bin mpvsim -- all --reps 10
//! cargo run --release -p mpvsim-cli --bin mpvsim -- sweep run --dir sweep-out
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use mpvsim_core as core;
pub use mpvsim_des as des;
pub use mpvsim_mobility as mobility;
pub use mpvsim_phonenet as phonenet;
pub use mpvsim_stats as stats;
pub use mpvsim_topology as topology;

/// The most commonly used items, importable with one `use`.
pub mod prelude {
    pub use mpvsim_core::{
        bless_oracle, bless_study, check_invariants, check_oracle, check_sharded_consistency,
        check_sharded_invariants, check_study, fuzz_case, fuzz_cases, shardable,
        trajectory_fingerprint, Drift, FuzzReport, GoldenScale, InvariantReport, OracleScale,
        StudyGolden, Variant,
    };
    pub use mpvsim_core::{
        record_shard_telemetry, reject_unshardable, run_scenario_sharded,
        run_scenario_sharded_configured, ShardLane, ShardMode, ShardOutcome, ShardTelemetry,
    };
    pub use mpvsim_core::{
        resume_sweep, run_scenario, run_scenario_cached, run_scenario_configured,
        run_scenario_probed, run_scenario_with_metrics, run_scenario_with_metrics_fel, run_sweep,
        AcceptanceModel, AdaptiveResult, BehaviorConfig, Blacklist, BluetoothVector, ChainRecord,
        ConfigError, DetectionAlgorithm, EngineOptions, ExperimentPlan, ExperimentResult,
        Immunization, LayoutKind, MechanismTelemetry, MobilityConfig, Monitoring, PopulationConfig,
        ProbeKind, ProbeOutput, ResponseConfig, RolloutOrder, RunResult, ScenarioConfig,
        ScenarioSpec, SendQuota, SignatureScan, SimProbe, StudyId, StudyKind, SweepOptions,
        SweepSpec, TargetingStrategy, TopologyCache, TraceRecord, UserEducation, VirusProfile,
    };
    pub use mpvsim_core::{
        solve_bounds, BoundsKnob, BoundsOptions, BoundsOutcome, BoundsReport, BoundsRun,
        BoundsSpec, ConfirmPolicy, SearchRange,
    };
    pub use mpvsim_des::{
        DelaySpec, ExperimentMetrics, ExperimentObserver, FelKind, JsonlObserver, NoopObserver,
        ObserverHandle, ProgressObserver, ReplicationMetrics, SimDuration, SimTime,
    };
    pub use mpvsim_phonenet::{Health, PhoneId, Population};
    pub use mpvsim_stats::{OnlineAggregate, Summary, TimeSeries};
    pub use mpvsim_topology::GraphSpec;
}

#[cfg(test)]
mod tests {
    #[test]
    fn prelude_reexports_compile() {
        use crate::prelude::*;
        let c = ScenarioConfig::baseline(VirusProfile::virus3());
        assert!(c.validate().is_ok());
        let _ = GraphSpec::erdos_renyi(10, 2.0);
        let _ = SimDuration::from_hours(1);
        let plan = ExperimentPlan::new(2).master_seed(7).observer(NoopObserver);
        assert_eq!(plan.rep_count(), 2);
        let _ = ObserverHandle::noop();
        let _ = OnlineAggregate::new();
    }
}
