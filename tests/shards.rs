//! Property-based equivalence tests for the sharded engine: for *any*
//! shardable scenario — random virus, random response stack, every
//! topology generator — running a replication across 2, 3 or 8 shards
//! must reproduce the sharded engine's own single-shard trajectory
//! byte for byte (compared as the same FNV-1a fingerprint the golden
//! store uses), conserve cross-shard message flow, and be
//! deterministic under re-run.
//!
//! The strategies deliberately mirror `tests/invariants.rs`, then pass
//! each drawn configuration through [`shardable`] so the cases stay
//! inside the sharded engine's feature envelope (no Bluetooth/mobility,
//! no legitimate traffic, positive-minimum read delay, ...) without
//! shrinking the rest of the configuration space.

use proptest::prelude::*;

use mpvsim::prelude::*;

/// Strategy for a random but valid virus profile (MMS vector only —
/// [`shardable`] would strip a Bluetooth vector anyway).
fn virus_strategy() -> impl Strategy<Value = VirusProfile> {
    (
        1u32..5,                                            // recipients per message
        1u64..60,                                           // min gap minutes
        prop_oneof![Just(None), (1u32..20).prop_map(Some)], // per-day quota
        any::<bool>(),                                      // contact list vs random dialing
        0.0f64..=1.0,                                       // valid fraction (dialing only)
        0u64..3,                                            // dormancy hours
        any::<bool>(),                                      // global day bursts
    )
        .prop_map(|(recipients, gap, per_day, dial, valid, dormancy, bursts)| {
            let targeting = if dial {
                TargetingStrategy::RandomDialing { valid_fraction: valid }
            } else {
                TargetingStrategy::ContactList
            };
            VirusProfile {
                name: "shard-virus".to_owned(),
                targeting,
                send_gap: DelaySpec::shifted_exp(
                    SimDuration::from_mins(gap),
                    SimDuration::from_mins(gap / 2 + 1),
                ),
                recipients_per_message: if dial { 1 } else { recipients },
                quota: match per_day {
                    Some(n) => SendQuota::per_day(n),
                    None => SendQuota::unlimited(),
                },
                dormancy: SimDuration::from_hours(dormancy),
                global_day_bursts: bursts,
                mms_vector: true,
                bluetooth: None,
                piggyback: false,
            }
        })
}

/// Strategy over all six response mechanisms, each independently
/// present or absent.
fn response_strategy() -> impl Strategy<Value = ResponseConfig> {
    (
        prop_oneof![Just(None), (1u64..24).prop_map(Some)], // scan delay h
        prop_oneof![Just(None), (0.5f64..1.0).prop_map(Some)], // detection accuracy
        prop_oneof![Just(None), (0.0f64..1.0).prop_map(Some)], // education scale
        prop_oneof![Just(None), ((1u64..24), (0u64..12)).prop_map(Some)], // immunization
        prop_oneof![Just(None), (5u64..60).prop_map(Some)], // monitoring wait min
        prop_oneof![Just(None), (1u32..40).prop_map(Some)], // blacklist threshold
    )
        .prop_map(|(scan, detect, edu, imm, mon, bl)| {
            let mut r = ResponseConfig::none();
            if let Some(h) = scan {
                r = r.with_signature_scan(SignatureScan {
                    activation_delay: SimDuration::from_hours(h),
                });
            }
            if let Some(a) = detect {
                r = r.with_detection(DetectionAlgorithm::with_accuracy(a));
            }
            if let Some(s) = edu {
                r = r.with_education(UserEducation { acceptance_scale: s });
            }
            if let Some((dev, roll)) = imm {
                r = r.with_immunization(Immunization::uniform(
                    SimDuration::from_hours(dev),
                    SimDuration::from_hours(roll),
                ));
            }
            if let Some(w) = mon {
                r = r.with_monitoring(Monitoring::with_forced_wait(SimDuration::from_mins(w)));
            }
            if let Some(t) = bl {
                r = r.with_blacklist(Blacklist { threshold: t });
            }
            r
        })
}

/// Picks a contact topology from every generator family, with
/// parameters clamped so the spec always validates for `n` nodes.
fn make_topology(n: usize, degree: u64, pick: usize, beta: f64) -> GraphSpec {
    let mean = degree.min(n as u64 - 1) as f64;
    let lattice_k = ((degree as usize).clamp(2, n - 1) & !1).max(2);
    match pick {
        0 => GraphSpec::power_law(n, mean.max(1.0)),
        1 => GraphSpec::watts_strogatz(n, lattice_k, beta),
        2 => GraphSpec::ring(n, lattice_k),
        3 => GraphSpec::complete(n),
        _ => GraphSpec::erdos_renyi(n, mean),
    }
}

fn scenario_strategy() -> impl Strategy<Value = ScenarioConfig> {
    (
        virus_strategy(),
        response_strategy(),
        // Topology: (n, mean degree, generator family, rewiring beta).
        (20usize..80, 1u64..30, 0usize..5, 0.0f64..=1.0),
        0.0f64..=1.0, // vulnerable fraction
        2u64..36,     // horizon hours
        1u32..6,      // initial infections
    )
        .prop_map(|(virus, response, topo, vulnerable, horizon, seeds)| {
            let (n, degree, pick, beta) = topo;
            let mut c = ScenarioConfig::baseline(virus);
            c.response = response;
            c.population = PopulationConfig {
                topology: make_topology(n, degree, pick, beta),
                vulnerable_fraction: vulnerable,
            };
            c.horizon = SimDuration::from_hours(horizon);
            c.initial_infections = seeds;
            // Normalize into the sharded feature envelope; for these
            // strategies only the zero-minimum read delay needs fixing.
            shardable(&c)
        })
}

/// Runs `config` on the sharded engine and returns the trajectory
/// fingerprint plus the events processed.
fn sharded_fingerprint(config: &ScenarioConfig, seed: u64, shards: usize) -> (u64, u64) {
    let outcome = run_scenario_sharded(
        config,
        seed,
        FelKind::BinaryHeap,
        None,
        shards,
        None,
        ShardMode::Auto,
    )
    .expect("shardable scenario runs");
    outcome.telemetry.check_flow().expect("cross-shard flow conserves");
    (trajectory_fingerprint(&outcome.result), outcome.metrics.events_processed)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// The tentpole equivalence property: for any shardable scenario,
    /// every shard count produces the identical trajectory.
    #[test]
    fn prop_sharded_equals_single_shard(config in scenario_strategy(), seed in 0u64..1_000_000) {
        prop_assume!(config.validate().is_ok());
        prop_assume!(reject_unshardable(&config).is_ok());
        let (baseline, _) = sharded_fingerprint(&config, seed, 1);
        for shards in [2usize, 3, 8] {
            let (fp, _) = sharded_fingerprint(&config, seed, shards);
            prop_assert_eq!(
                fp, baseline,
                "trajectory diverged at {} shards (population {})",
                shards, config.population.size()
            );
        }
    }

    /// The full invariant battery (probe mirror, conservation, flow,
    /// determinism) holds on random shardable scenarios.
    #[test]
    fn prop_sharded_invariants_hold(config in scenario_strategy(), seed in 0u64..1_000_000) {
        prop_assume!(config.validate().is_ok());
        prop_assume!(reject_unshardable(&config).is_ok());
        let report = check_sharded_invariants(&config, seed, FelKind::Calendar, 3)
            .expect("shardable scenario runs");
        prop_assert!(report.violations.is_empty(), "violations: {:?}", report.violations);
    }
}

/// More shards than phones: the surplus shards stay empty and the
/// trajectory still matches the single-shard run.
#[test]
fn more_shards_than_population_is_equivalent() {
    let mut config = ScenarioConfig::baseline(VirusProfile::virus1());
    config.population =
        PopulationConfig { topology: GraphSpec::ring(6, 2), vulnerable_fraction: 1.0 };
    config.horizon = SimDuration::from_hours(8);
    config.initial_infections = 3;
    let config = shardable(&config);
    let (baseline, events) = sharded_fingerprint(&config, 41, 1);
    let (fp, events_sharded) = sharded_fingerprint(&config, 41, 16);
    assert_eq!(fp, baseline);
    assert_eq!(events_sharded, events);
}

/// A fully disconnected topology (no contact edges at all) runs on
/// random dialing only; cross-shard traffic still conserves and the
/// equivalence holds.
#[test]
fn disconnected_topology_is_equivalent() {
    let virus = VirusProfile {
        name: "dialer".to_owned(),
        targeting: TargetingStrategy::RandomDialing { valid_fraction: 1.0 },
        send_gap: DelaySpec::shifted_exp(SimDuration::from_mins(2), SimDuration::from_mins(10)),
        recipients_per_message: 1,
        quota: SendQuota::unlimited(),
        dormancy: SimDuration::ZERO,
        global_day_bursts: false,
        mms_vector: true,
        bluetooth: None,
        piggyback: false,
    };
    let mut config = ScenarioConfig::baseline(virus);
    config.population =
        PopulationConfig { topology: GraphSpec::erdos_renyi(40, 0.0), vulnerable_fraction: 1.0 };
    config.horizon = SimDuration::from_hours(12);
    config.initial_infections = 4;
    let config = shardable(&config);
    assert!(config.validate().is_ok());
    let (baseline, _) = sharded_fingerprint(&config, 9, 1);
    for shards in [2usize, 3, 8] {
        let (fp, _) = sharded_fingerprint(&config, 9, shards);
        assert_eq!(fp, baseline, "diverged at {shards} shards on a disconnected graph");
    }
}
