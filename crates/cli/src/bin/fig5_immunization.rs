//! Deprecated shim: forwards to `mpvsim study fig5_immunization`.
fn main() {
    mpvsim_cli::commands::deprecated_shim("fig5_immunization");
}
