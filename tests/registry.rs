//! Integration tests: the study registry is the single source of truth.
//!
//! Every figure, claim check, and extension study must be reachable by
//! stable name through [`StudyId`], and running a study through the
//! registry must be bit-identical to calling its `figures::` entry point
//! directly — the registry is a directory, not a different code path.

use mpvsim::core::figures::{self, FigureOptions, LabeledResult};
use mpvsim::core::studies::registry;
use mpvsim::prelude::*;

fn quick_opts() -> FigureOptions {
    FigureOptions {
        reps: 2,
        population: 120,
        engine: EngineOptions::new().with_threads(2),
        ..FigureOptions::default()
    }
}

#[test]
fn registry_names_are_stable_and_unique() {
    let names: Vec<&str> = registry().iter().map(|info| info.name).collect();
    assert_eq!(names.len(), 16, "registry gained or lost a study");
    let mut sorted = names.clone();
    sorted.sort_unstable();
    sorted.dedup();
    assert_eq!(sorted.len(), names.len(), "duplicate study name in registry");
    // The names double as CLI commands and historical binary names;
    // renaming one is a breaking change.
    for expected in [
        "fig1_baseline",
        "fig7_blacklist",
        "blacklist_matrix",
        "scaling",
        "combo",
        "ext_bluetooth",
        "ext_false_positives",
        "ext_rollout_order",
        "diminishing_returns",
        "ext_congestion",
        "matrix",
    ] {
        assert!(names.contains(&expected), "registry lost {expected:?}");
    }
}

#[test]
fn every_name_round_trips_through_from_name() {
    for id in StudyId::all() {
        assert_eq!(StudyId::from_name(id.name()), Some(id));
        assert!(!id.title().is_empty());
    }
    assert_eq!(StudyId::from_name("no_such_study"), None);
    assert_eq!(StudyId::all().len(), registry().len());
}

#[test]
fn kinds_partition_the_registry() {
    let count = |kind: StudyKind| StudyId::all().iter().filter(|id| id.kind() == kind).count();
    assert_eq!(count(StudyKind::Figure), 7, "the paper has seven figures");
    assert_eq!(count(StudyKind::Claim), 3);
    assert_eq!(count(StudyKind::Extension), 6);
}

#[test]
fn every_study_declares_cells() {
    let opts = quick_opts();
    for id in StudyId::all() {
        let cells = id.cells(&opts);
        assert!(!cells.is_empty(), "{} declares no cells", id.name());
        for cell in &cells {
            assert!(!cell.label().is_empty(), "{} has an unlabelled cell", id.name());
            cell.spec.validate().unwrap_or_else(|e| {
                panic!("{} cell {:?} is invalid: {e}", id.name(), cell.label())
            });
        }
    }
}

fn assert_bit_identical(via_registry: &[LabeledResult], direct: &[LabeledResult], name: &str) {
    assert_eq!(via_registry.len(), direct.len(), "{name}: cell count differs");
    for (a, b) in via_registry.iter().zip(direct) {
        assert_eq!(a.label, b.label, "{name}: labels differ");
        let bits = |xs: &[f64]| xs.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(
            bits(&a.result.aggregate.mean),
            bits(&b.result.aggregate.mean),
            "{name} {:?}: registry and direct means differ",
            a.label
        );
        assert_eq!(
            bits(&a.result.aggregate.ci95_half_width),
            bits(&b.result.aggregate.ci95_half_width),
            "{name} {:?}: confidence bands differ",
            a.label
        );
        assert_eq!(a.result.final_infected, b.result.final_infected);
    }
}

#[test]
fn registry_run_matches_direct_figure_call() {
    let opts = quick_opts();
    let direct = figures::fig1_baseline(&opts).expect("valid");
    let via = StudyId::from_name("fig1_baseline").expect("registered").run(&opts).expect("valid");
    assert_bit_identical(&via, &direct, "fig1_baseline");
}

#[test]
fn registry_run_matches_direct_extension_call() {
    let opts = quick_opts();
    let direct = figures::congestion_study(&opts).expect("valid");
    let via = StudyId::from_name("ext_congestion").expect("registered").run(&opts).expect("valid");
    assert_bit_identical(&via, &direct, "ext_congestion");
}
