//! The future-event list: a priority queue with a deterministic total order.
//!
//! Events are ordered by `(time, sequence-number)`. The sequence number is
//! assigned at scheduling time, so events scheduled for the same instant
//! fire in the order they were scheduled. This removes the main source of
//! nondeterminism in naive DES implementations (heap tie-breaking), which is
//! what makes replications reproducible.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// An event with its firing time and tie-breaking sequence number.
#[derive(Debug, Clone)]
struct Scheduled<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}

impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest first.
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}

/// A future-event list ordered by `(time, scheduling order)`.
///
/// ```rust
/// use mpvsim_des::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.schedule(SimTime::from_secs(10), "b");
/// q.schedule(SimTime::from_secs(5), "a");
/// q.schedule(SimTime::from_secs(10), "c");
/// assert_eq!(q.pop(), Some((SimTime::from_secs(5), "a")));
/// assert_eq!(q.pop(), Some((SimTime::from_secs(10), "b")));
/// assert_eq!(q.pop(), Some((SimTime::from_secs(10), "c")));
/// assert_eq!(q.pop(), None);
/// ```
#[derive(Debug, Clone)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    next_seq: u64,
    scheduled_total: u64,
    peak_len: usize,
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue { heap: BinaryHeap::new(), next_seq: 0, scheduled_total: 0, peak_len: 0 }
    }

    /// Schedules `event` to fire at `time`.
    ///
    /// Events at equal times fire in scheduling order.
    pub fn schedule(&mut self, time: SimTime, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.scheduled_total += 1;
        self.heap.push(Scheduled { time, seq, event });
        self.peak_len = self.peak_len.max(self.heap.len());
    }

    /// Removes and returns the earliest event, if any.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|s| (s.time, s.event))
    }

    /// The firing time of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|s| s.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total number of events scheduled over the queue's lifetime.
    pub fn scheduled_total(&self) -> u64 {
        self.scheduled_total
    }

    /// The largest number of events that were ever pending at once (the
    /// future-event list's high-water mark, a proxy for the run's working
    /// memory).
    pub fn peak_len(&self) -> usize {
        self.peak_len
    }

    /// Discards all pending events (the lifetime counter is kept).
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(30), 3u32);
        q.schedule(SimTime::from_secs(10), 1);
        q.schedule(SimTime::from_secs(20), 2);
        let order: Vec<u32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn equal_times_fire_in_scheduling_order() {
        let mut q = EventQueue::new();
        for i in 0..100u32 {
            q.schedule(SimTime::from_secs(7), i);
        }
        let order: Vec<u32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn peek_time_matches_next_pop() {
        let mut q = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        q.schedule(SimTime::from_secs(42), ());
        q.schedule(SimTime::from_secs(5), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(5)));
        let (t, _) = q.pop().unwrap();
        assert_eq!(t, SimTime::from_secs(5));
    }

    #[test]
    fn len_and_clear() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::ZERO, 1);
        q.schedule(SimTime::ZERO, 2);
        assert_eq!(q.len(), 2);
        assert!(!q.is_empty());
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.scheduled_total(), 2);
    }

    #[test]
    fn peak_len_tracks_high_water_mark() {
        let mut q = EventQueue::new();
        assert_eq!(q.peak_len(), 0);
        q.schedule(SimTime::ZERO, 1);
        q.schedule(SimTime::ZERO, 2);
        q.schedule(SimTime::ZERO, 3);
        assert_eq!(q.peak_len(), 3);
        q.pop();
        q.pop();
        // Draining does not lower the recorded peak.
        assert_eq!(q.peak_len(), 3);
        q.schedule(SimTime::ZERO, 4);
        assert_eq!(q.peak_len(), 3, "refilling below the peak keeps it");
        q.schedule(SimTime::ZERO, 5);
        q.schedule(SimTime::ZERO, 6);
        assert_eq!(q.peak_len(), 4);
    }

    #[test]
    fn interleaved_schedule_and_pop_stays_ordered() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(10), "late");
        q.schedule(SimTime::from_secs(1), "early");
        assert_eq!(q.pop().unwrap().1, "early");
        // Schedule something earlier than the remaining event.
        q.schedule(SimTime::from_secs(5), "middle");
        assert_eq!(q.pop().unwrap().1, "middle");
        assert_eq!(q.pop().unwrap().1, "late");
    }

    proptest! {
        /// Popping always yields a non-decreasing sequence of times, and
        /// within a time, preserves scheduling order.
        #[test]
        fn prop_total_order(times in proptest::collection::vec(0u64..1000, 1..200)) {
            let mut q = EventQueue::new();
            for (i, &t) in times.iter().enumerate() {
                q.schedule(SimTime::from_secs(t), i);
            }
            let mut last: Option<(SimTime, usize)> = None;
            while let Some((t, idx)) = q.pop() {
                if let Some((lt, lidx)) = last {
                    prop_assert!(t >= lt, "time went backwards");
                    if t == lt {
                        prop_assert!(idx > lidx, "FIFO violated at equal time");
                    }
                }
                last = Some((t, idx));
            }
        }

        /// Every scheduled event is popped exactly once.
        #[test]
        fn prop_conservation(times in proptest::collection::vec(0u64..50, 0..100)) {
            let mut q = EventQueue::new();
            for (i, &t) in times.iter().enumerate() {
                q.schedule(SimTime::from_secs(t), i);
            }
            let mut seen = vec![false; times.len()];
            while let Some((_, idx)) = q.pop() {
                prop_assert!(!seen[idx], "event popped twice");
                seen[idx] = true;
            }
            prop_assert!(seen.iter().all(|&s| s), "event lost");
        }
    }
}
