//! One benchmark per paper artefact: each bench runs the corresponding
//! experiment definition from `mpvsim_core::figures` at a reduced scale
//! (population 150, one replication), so `cargo bench` exercises the full
//! regeneration path of every figure and prose claim.
//!
//! | bench | paper artefact |
//! |---|---|
//! | `fig1_baseline` | Figure 1 — baseline curves |
//! | `fig2_virus_scan` | Figure 2 — signature scan delays |
//! | `fig3_detection` | Figure 3 — detection accuracies |
//! | `fig4_education` | Figure 4 — user education |
//! | `fig5_immunization` | Figure 5 — patch deployment times |
//! | `fig6_monitoring` | Figure 6 — forced waits |
//! | `fig7_blacklist` | Figure 7 — blacklist thresholds |
//! | `txt_blacklist_matrix` | §5.2 prose — blacklist vs Viruses 1/2/4 |
//! | `txt_scaling` | §5.3 prose — population scaling |
//! | `ext_combo` | §6 — combined mechanisms |

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, Criterion};

use mpvsim_core::figures::{self, FigureOptions};

fn opts() -> FigureOptions {
    FigureOptions {
        reps: 1,
        master_seed: 2007,
        engine: mpvsim_core::EngineOptions::new(),
        population: 150,
        ..FigureOptions::default()
    }
}

fn bench_figures(c: &mut Criterion) {
    let mut group = c.benchmark_group("figures");
    group.sample_size(10);

    macro_rules! fig_bench {
        ($name:literal, $f:path) => {
            group.bench_function($name, |b| {
                b.iter(|| black_box($f(&opts()).expect("figure definition is valid")))
            });
        };
    }

    fig_bench!("fig1_baseline", figures::fig1_baseline);
    fig_bench!("fig2_virus_scan", figures::fig2_virus_scan);
    fig_bench!("fig3_detection", figures::fig3_detection);
    fig_bench!("fig4_education", figures::fig4_education);
    fig_bench!("fig5_immunization", figures::fig5_immunization);
    fig_bench!("fig6_monitoring", figures::fig6_monitoring);
    fig_bench!("fig7_blacklist", figures::fig7_blacklist);
    fig_bench!("txt_blacklist_matrix", figures::blacklist_matrix);
    fig_bench!("txt_scaling", figures::scaling_study);
    fig_bench!("ext_combo", figures::combo_study);

    group.finish();
}

criterion_group!(benches, bench_figures);
criterion_main!(benches);
