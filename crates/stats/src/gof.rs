//! Goodness-of-fit helpers for the differential oracle.
//!
//! The validation layer compares the stochastic engine against the
//! mean-field ODE and against its own committed golden runs. Two tests
//! carry that comparison:
//!
//! * **CI containment** — does a replication set's 95% confidence
//!   interval cover a reference mean? ([`ci95_contains`])
//! * **Two-sample Kolmogorov–Smirnov distance** — are two sets of
//!   per-replication outcomes drawn from plausibly the same
//!   distribution? ([`ks_distance`], [`ks_critical_value`])

use crate::welford::RunningSummary;

/// The two-sample Kolmogorov–Smirnov statistic: the supremum distance
/// between the empirical CDFs of `a` and `b`.
///
/// Inputs need not be sorted; NaNs are ordered with [`f64::total_cmp`]
/// (after all finite values) so the statistic is always well defined.
/// Returns 0.0 when either sample is empty — an empty sample carries no
/// distributional evidence to reject on.
pub fn ks_distance(a: &[f64], b: &[f64]) -> f64 {
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    let mut xs = a.to_vec();
    let mut ys = b.to_vec();
    xs.sort_unstable_by(f64::total_cmp);
    ys.sort_unstable_by(f64::total_cmp);

    let (n, m) = (xs.len() as f64, ys.len() as f64);
    let (mut i, mut j) = (0usize, 0usize);
    let mut sup = 0.0f64;
    while i < xs.len() && j < ys.len() {
        // Advance past ties in lockstep so both CDFs are evaluated at
        // the same point.
        let x = xs[i].min(ys[j]);
        while i < xs.len() && xs[i].total_cmp(&x).is_le() {
            i += 1;
        }
        while j < ys.len() && ys[j].total_cmp(&x).is_le() {
            j += 1;
        }
        let d = (i as f64 / n - j as f64 / m).abs();
        if d > sup {
            sup = d;
        }
    }
    sup
}

/// The large-sample critical value for the two-sample K-S test at the
/// given significance level: `c(α) · sqrt((n + m) / (n · m))` with
/// `c(α) = sqrt(-ln(α / 2) / 2)`.
///
/// A [`ks_distance`] exceeding this value rejects "same distribution"
/// at level `alpha`. The asymptotic formula is conservative for the
/// small replication counts used by the oracle, which is the safe
/// direction for a regression gate.
///
/// # Panics
///
/// Panics if `alpha` is outside `(0, 1)` or either sample size is zero.
pub fn ks_critical_value(n: usize, m: usize, alpha: f64) -> f64 {
    assert!(alpha > 0.0 && alpha < 1.0, "alpha must be in (0, 1)");
    assert!(n > 0 && m > 0, "sample sizes must be positive");
    let c = (-(alpha / 2.0).ln() / 2.0).sqrt();
    let (n, m) = (n as f64, m as f64);
    c * ((n + m) / (n * m)).sqrt()
}

/// Whether the 95% confidence interval of `summary` contains `value`.
///
/// `min_half_width` widens degenerate intervals: with few replications
/// (or zero sample variance) the CI half-width can collapse to zero,
/// which would make the containment check vacuously fail on any
/// reference that differs in the last bit. The oracle passes the
/// tolerance it is prepared to accept as `min_half_width`.
pub fn ci95_contains(summary: &RunningSummary, value: f64, min_half_width: f64) -> bool {
    let half = summary.ci95_half_width().max(min_half_width);
    (summary.mean() - value).abs() <= half
}

/// CI-aware sequential stopping rule for comparing a running mean
/// against a fixed threshold.
///
/// The bounds solver (and any other adaptive consumer) keeps pushing
/// replications into a [`RunningSummary`] and asks the gate after every
/// observation whether the evidence already settles which side of
/// `threshold` the mean is on. The rule:
///
/// * fewer than `min_reps` observations → keep sampling (a variance
///   estimate from one or two runs is noise);
/// * the 95 % CI (widened to at least `min_half_width`, see
///   [`ci95_contains`]) no longer contains `threshold` → **stop**, the
///   mean is cleanly on one side;
/// * `max_reps` observations → **stop** regardless, and let the caller
///   fall back on the point estimate.
///
/// Because the decision depends only on the observation sequence (never
/// on timing or thread interleaving), callers that evaluate in parallel
/// batches but apply the gate in global replication order get a
/// deterministic, thread-count-independent stopping index.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SequentialGate {
    /// Observations required before the CI test may stop the run.
    pub min_reps: u64,
    /// Hard cap on observations.
    pub max_reps: u64,
    /// Floor on the CI half-width used in the containment test.
    pub min_half_width: f64,
    /// The reference value the mean is compared against.
    pub threshold: f64,
}

impl SequentialGate {
    /// Whether sampling can stop given the evidence in `summary`.
    pub fn decided(&self, summary: &RunningSummary) -> bool {
        if summary.n() < self.min_reps {
            return false;
        }
        if summary.n() >= self.max_reps {
            return true;
        }
        !ci95_contains(summary, self.threshold, self.min_half_width)
    }

    /// Whether `summary`'s mean meets (is at or below) the threshold —
    /// the point-estimate verdict once [`SequentialGate::decided`] says
    /// sampling may stop.
    pub fn below(&self, summary: &RunningSummary) -> bool {
        summary.mean() <= self.threshold
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_samples_have_zero_distance() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(ks_distance(&xs, &xs), 0.0);
    }

    #[test]
    fn disjoint_samples_have_distance_one() {
        let a = [0.0, 1.0, 2.0];
        let b = [10.0, 11.0, 12.0];
        assert_eq!(ks_distance(&a, &b), 1.0);
        assert_eq!(ks_distance(&b, &a), 1.0);
    }

    #[test]
    fn distance_is_symmetric_and_order_free() {
        let a = [3.0, 1.0, 2.0, 8.0];
        let b = [2.5, 0.5, 9.0];
        let d1 = ks_distance(&a, &b);
        let d2 = ks_distance(&b, &a);
        assert_eq!(d1, d2);
        let mut a_sorted = a;
        a_sorted.sort_unstable_by(f64::total_cmp);
        assert_eq!(ks_distance(&a_sorted, &b), d1);
    }

    #[test]
    fn known_half_shift() {
        // a = {0,1}, b = {1,2}: CDFs differ by 1/2 on [0,1).
        let a = [0.0, 1.0];
        let b = [1.0, 2.0];
        assert!((ks_distance(&a, &b) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_samples_are_inert() {
        assert_eq!(ks_distance(&[], &[1.0]), 0.0);
        assert_eq!(ks_distance(&[1.0], &[]), 0.0);
    }

    #[test]
    fn critical_value_matches_textbook() {
        // c(0.05) ≈ 1.358; equal n = m = 100 → D_crit ≈ 0.192.
        let d = ks_critical_value(100, 100, 0.05);
        assert!((d - 0.192_07).abs() < 1e-3, "got {d}");
        // Stricter alpha → larger critical value.
        assert!(ks_critical_value(100, 100, 0.01) > d);
    }

    #[test]
    fn gate_waits_for_min_reps_then_stops_on_separation() {
        let gate =
            SequentialGate { min_reps: 4, max_reps: 16, min_half_width: 0.5, threshold: 10.0 };
        let mut s = RunningSummary::new();
        // Far above the threshold, but the gate must not decide before
        // min_reps observations.
        for v in [100.0, 101.0, 99.0] {
            s.push(v);
            assert!(!gate.decided(&s), "decided after only {} reps", s.n());
        }
        s.push(100.0);
        assert!(gate.decided(&s), "4 tight reps far from 10.0 settle it");
        assert!(!gate.below(&s));
    }

    #[test]
    fn gate_keeps_sampling_while_ci_straddles_threshold() {
        let gate =
            SequentialGate { min_reps: 2, max_reps: 16, min_half_width: 0.5, threshold: 10.0 };
        let mut s = RunningSummary::new();
        // High-variance samples straddling the threshold: undecided.
        for v in [2.0, 18.0, 4.0, 16.0] {
            s.push(v);
        }
        assert!(!gate.decided(&s), "CI straddles 10.0");
        // The cap forces a decision with the same evidence.
        let capped = SequentialGate { max_reps: 4, ..gate };
        assert!(capped.decided(&s));
        assert!(capped.below(&s));
    }

    #[test]
    fn gate_min_half_width_defers_noise_level_separation() {
        // Mean 10.3 with zero variance: a bare CI would stop instantly,
        // but a 0.5 floor treats 10.3 as indistinguishable from 10.0.
        let gate =
            SequentialGate { min_reps: 2, max_reps: 16, min_half_width: 0.5, threshold: 10.0 };
        let mut s = RunningSummary::new();
        for _ in 0..4 {
            s.push(10.3);
        }
        assert!(!gate.decided(&s));
        let strict = SequentialGate { min_half_width: 0.1, ..gate };
        assert!(strict.decided(&s));
    }

    #[test]
    fn ci_containment_with_floor() {
        let mut s = RunningSummary::new();
        for v in [10.0, 10.0, 10.0] {
            s.push(v);
        }
        // Zero variance: bare CI excludes everything but the mean…
        assert!(ci95_contains(&s, 10.0, 0.0));
        assert!(!ci95_contains(&s, 10.4, 0.0));
        // …but the floor admits values within the stated tolerance.
        assert!(ci95_contains(&s, 10.4, 0.5));
        assert!(!ci95_contains(&s, 11.0, 0.5));
    }
}
