//! Scenario configuration: everything a replication needs, as plain data.

use serde::{Deserialize, Serialize};
use std::error::Error;
use std::fmt;

use mpvsim_des::SimDuration;
use mpvsim_mobility::{Arena, WaypointParams};
use mpvsim_topology::GraphSpec;

use crate::behavior::BehaviorConfig;
use crate::response::ResponseConfig;
use crate::virus::VirusProfile;

/// Population structure: how many phones, how they are wired, and what
/// fraction run the vulnerable platform.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PopulationConfig {
    /// The contact-network generator (node count comes from here).
    pub topology: GraphSpec,
    /// Fraction of phones vulnerable to the virus (paper: 0.8).
    pub vulnerable_fraction: f64,
}

impl PopulationConfig {
    /// The paper's population: `size` phones on a power-law contact graph
    /// with mean contact-list size 80 (clamped to `size − 1` for small
    /// test populations), 80 % vulnerable.
    pub fn paper_default(size: usize) -> Self {
        let mean_degree = 80.0f64.min(size.saturating_sub(1) as f64);
        PopulationConfig {
            topology: GraphSpec::power_law(size, mean_degree),
            vulnerable_fraction: 0.8,
        }
    }

    /// Number of phones.
    pub fn size(&self) -> usize {
        self.topology.node_count()
    }
}

/// Physical mobility of the phone owners, needed by the Bluetooth
/// propagation vector (paper §6 future work). Each phone is carried by a
/// random-waypoint walker; positions advance every `tick`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MobilityConfig {
    /// Arena width, meters.
    pub arena_width: f64,
    /// Arena height, meters.
    pub arena_height: f64,
    /// Random-waypoint movement parameters.
    pub waypoint: WaypointParams,
    /// How often positions (and Bluetooth contacts) are updated.
    pub tick: SimDuration,
}

impl MobilityConfig {
    /// A downtown-scale default: 1 km² arena, pedestrian movement,
    /// one-minute ticks.
    pub fn downtown() -> Self {
        MobilityConfig {
            arena_width: 1000.0,
            arena_height: 1000.0,
            waypoint: WaypointParams::pedestrian(),
            tick: SimDuration::from_mins(1),
        }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a message describing the first invalid parameter.
    pub fn validate(&self) -> Result<(), String> {
        Arena::new(self.arena_width, self.arena_height)?;
        self.waypoint.validate()?;
        if self.tick.is_zero() {
            return Err("mobility tick must be positive".to_owned());
        }
        Ok(())
    }

    /// The arena described by this configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid; call
    /// [`MobilityConfig::validate`] first.
    pub fn arena(&self) -> Arena {
        Arena::new(self.arena_width, self.arena_height).expect("validated mobility config")
    }
}

/// A complete simulation scenario: population, user behaviour, virus,
/// response mechanisms and observation settings.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioConfig {
    /// Population structure.
    pub population: PopulationConfig,
    /// User read-delay and acceptance behaviour.
    pub behavior: BehaviorConfig,
    /// The virus under study.
    pub virus: VirusProfile,
    /// Response mechanisms in force (empty = baseline).
    pub response: ResponseConfig,
    /// How long to observe, from the initial infection.
    pub horizon: SimDuration,
    /// Infection-count sampling period for the output time series.
    pub sample_step: SimDuration,
    /// Number of infected messages the gateways must observe before the
    /// virus counts as "detectable" (starts the scan / detection /
    /// immunization clocks).
    pub detect_threshold: u64,
    /// Number of initially infected phones (paper: 1).
    pub initial_infections: u32,
    /// Physical mobility of the phone owners; required when the virus
    /// has a Bluetooth vector, ignored otherwise.
    pub mobility: Option<MobilityConfig>,
    /// Finite MMS gateway capacity in messages/hour (each recipient copy
    /// consumes one service slot). `None` reproduces the paper's
    /// assumption that "the phone network infrastructure can support the
    /// extra volume"; `Some(c)` makes virus floods congest delivery.
    pub gateway_capacity_per_hour: Option<u64>,
    /// Hard cap on events processed per replication; a run that exceeds
    /// it stops and the experiment reports an error naming the offending
    /// seed. `None` uses [`crate::run::DEFAULT_EVENT_BUDGET`], generous
    /// enough that only a runaway scenario (e.g. a self-amplifying virus
    /// on a huge horizon) trips it. Deserialization defaults to `None`,
    /// so existing configuration files keep working.
    #[serde(default)]
    pub event_budget: Option<u64>,
    /// Per-phone cap on MMS messages pending (delivered but not yet
    /// read) in the inbox; a delivery that would exceed it is refused
    /// deterministically (tail-drop, counted in the run statistics).
    /// `None` — the default, and the paper's implicit assumption — means
    /// unbounded inboxes. Serialized only when set, so canonical
    /// scenario-spec bytes are unchanged for existing configurations.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub inbox_cap: Option<u32>,
}

impl ScenarioConfig {
    /// The paper's baseline scenario for `virus`: 1000 phones (800
    /// vulnerable), power-law contacts of mean size 80, default user
    /// behaviour, no response mechanisms, the virus's own paper horizon,
    /// hourly sampling, detectability at 10 observed infected messages,
    /// one initial infection.
    pub fn baseline(virus: VirusProfile) -> Self {
        let horizon = virus.paper_horizon();
        ScenarioConfig {
            population: PopulationConfig::paper_default(1000),
            behavior: BehaviorConfig::paper_default(),
            virus,
            response: ResponseConfig::none(),
            horizon,
            sample_step: SimDuration::from_hours(1),
            detect_threshold: 10,
            initial_infections: 1,
            mobility: None,
            gateway_capacity_per_hour: None,
            event_budget: None,
            inbox_cap: None,
        }
    }

    /// Builder-style: attaches a mobility configuration (needed by the
    /// Bluetooth vector).
    pub fn with_mobility(mut self, mobility: MobilityConfig) -> Self {
        self.mobility = Some(mobility);
        self
    }

    /// Builder-style: replaces the response configuration.
    pub fn with_response(mut self, response: ResponseConfig) -> Self {
        self.response = response;
        self
    }

    /// Builder-style: replaces the horizon.
    pub fn with_horizon(mut self, horizon: SimDuration) -> Self {
        self.horizon = horizon;
        self
    }

    /// Builder-style: replaces the population.
    pub fn with_population(mut self, population: PopulationConfig) -> Self {
        self.population = population;
        self
    }

    /// Validates the whole configuration.
    ///
    /// # Errors
    ///
    /// Returns the first problem found, as a [`ConfigError`].
    pub fn validate(&self) -> Result<(), ConfigError> {
        self.population
            .topology
            .validate()
            .map_err(|e| ConfigError::invalid("population.topology", e.to_string()))?;
        let f = self.population.vulnerable_fraction;
        if !(0.0..=1.0).contains(&f) || !f.is_finite() {
            return Err(ConfigError::out_of_range("population.vulnerable_fraction", f, "[0, 1]"));
        }
        self.virus.validate().map_err(|e| ConfigError::invalid("virus", e))?;
        self.response.validate().map_err(|e| ConfigError::invalid("response", e))?;
        if self.horizon.is_zero() {
            return Err(ConfigError::invalid("horizon", "must be positive"));
        }
        if self.sample_step.is_zero() {
            return Err(ConfigError::invalid("sample_step", "must be positive"));
        }
        if self.initial_infections == 0 {
            return Err(ConfigError::invalid(
                "initial_infections",
                "need at least one initial infection",
            ));
        }
        if self.initial_infections as usize > self.population.size() {
            return Err(ConfigError::out_of_range(
                "initial_infections",
                self.initial_infections,
                format!("1..={} (the population size)", self.population.size()),
            ));
        }
        if let Some(cap) = self.gateway_capacity_per_hour {
            if cap == 0 || cap > 3600 {
                return Err(ConfigError::out_of_range(
                    "gateway_capacity_per_hour",
                    cap,
                    "1..=3600",
                ));
            }
        }
        if self.event_budget == Some(0) {
            return Err(ConfigError::invalid("event_budget", "must be positive"));
        }
        if self.inbox_cap == Some(0) {
            return Err(ConfigError::invalid("inbox_cap", "must be at least 1"));
        }
        match (&self.virus.bluetooth, &self.mobility) {
            (Some(_), None) => {
                return Err(ConfigError::invalid(
                    "mobility",
                    "virus has a Bluetooth vector but the scenario has no mobility model",
                ))
            }
            (_, Some(m)) => m.validate().map_err(|e| ConfigError::invalid("mobility", e))?,
            _ => {}
        }
        Ok(())
    }
}

/// A scenario configuration (or a scenario spec on its way to becoming
/// one) was invalid.
///
/// The error is structured — it names the offending field and, where
/// applicable, the allowed range — so machine consumers (the
/// `mpvsim serve` HTTP layer returns it verbatim in 422 bodies) can act
/// on it without parsing prose. [`fmt::Display`] renders the same
/// human-readable `invalid scenario configuration: …` messages the old
/// string-typed error produced.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
#[serde(tag = "kind", rename_all = "snake_case")]
pub enum ConfigError {
    /// A numeric field fell outside its allowed range.
    OutOfRange {
        /// Dotted path of the offending field (e.g. `population.vulnerable_fraction`).
        field: String,
        /// The rejected value, rendered as text.
        value: String,
        /// The allowed range, rendered as text (e.g. `[0, 1]`, `1..=3600`).
        allowed: String,
    },
    /// A field (or group of fields) failed a structural check.
    Invalid {
        /// Dotted path of the offending field.
        field: String,
        /// Why the value was rejected.
        reason: String,
    },
    /// A scenario spec carried an unsupported `schema` tag.
    Schema {
        /// The tag found in the document.
        found: String,
        /// The tag this build understands.
        expected: String,
    },
    /// A scenario spec document could not be parsed at all.
    Malformed {
        /// The parser's diagnostic.
        reason: String,
    },
    /// The configuration was valid but a run-time limit was violated
    /// (event budget exhausted, impossible replication counts, …).
    Run {
        /// What went wrong.
        reason: String,
    },
}

impl ConfigError {
    /// A structural-check failure on `field`.
    pub fn invalid(field: impl Into<String>, reason: impl Into<String>) -> Self {
        ConfigError::Invalid { field: field.into(), reason: reason.into() }
    }

    /// A range violation on `field`.
    pub fn out_of_range(
        field: impl Into<String>,
        value: impl fmt::Display,
        allowed: impl Into<String>,
    ) -> Self {
        ConfigError::OutOfRange {
            field: field.into(),
            value: value.to_string(),
            allowed: allowed.into(),
        }
    }

    /// An unsupported schema tag.
    pub fn schema(found: impl Into<String>, expected: impl Into<String>) -> Self {
        ConfigError::Schema { found: found.into(), expected: expected.into() }
    }

    /// An unparseable spec document.
    pub fn malformed(reason: impl Into<String>) -> Self {
        ConfigError::Malformed { reason: reason.into() }
    }

    /// A run-time failure (the scenario itself was valid).
    pub fn run(reason: impl Into<String>) -> Self {
        ConfigError::Run { reason: reason.into() }
    }

    /// The dotted field path the error points at, when it points at one.
    pub fn field(&self) -> Option<&str> {
        match self {
            ConfigError::OutOfRange { field, .. } | ConfigError::Invalid { field, .. } => {
                Some(field)
            }
            _ => None,
        }
    }
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid scenario configuration: ")?;
        match self {
            ConfigError::OutOfRange { field, value, allowed } => {
                write!(f, "{field} {value} must be in {allowed}")
            }
            ConfigError::Invalid { field, reason } => write!(f, "{field}: {reason}"),
            ConfigError::Schema { found, expected } => {
                write!(f, "schema {found:?} (this build understands {expected:?})")
            }
            ConfigError::Malformed { reason } => write!(f, "malformed spec: {reason}"),
            ConfigError::Run { reason } => write!(f, "{reason}"),
        }
    }
}

impl Error for ConfigError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::response::{Blacklist, ResponseConfig};

    #[test]
    fn baseline_validates_for_all_viruses() {
        for v in VirusProfile::all_four() {
            ScenarioConfig::baseline(v).validate().expect("baseline must be valid");
        }
    }

    #[test]
    fn paper_population_parameters() {
        let p = PopulationConfig::paper_default(1000);
        assert_eq!(p.size(), 1000);
        assert_eq!(p.vulnerable_fraction, 0.8);
        match p.topology {
            GraphSpec::PowerLaw { n, mean_degree, .. } => {
                assert_eq!(n, 1000);
                assert_eq!(mean_degree, 80.0);
            }
            other => panic!("expected power-law topology, got {other:?}"),
        }
    }

    #[test]
    fn builders_replace_fields() {
        let c = ScenarioConfig::baseline(VirusProfile::virus1())
            .with_horizon(SimDuration::from_hours(5))
            .with_response(ResponseConfig::none().with_blacklist(Blacklist { threshold: 10 }))
            .with_population(PopulationConfig::paper_default(2000));
        assert_eq!(c.horizon, SimDuration::from_hours(5));
        assert_eq!(c.population.size(), 2000);
        assert!(c.response.blacklist.is_some());
        assert!(c.validate().is_ok());
    }

    #[test]
    fn invalid_configs_rejected() {
        let mut c = ScenarioConfig::baseline(VirusProfile::virus1());
        c.horizon = SimDuration::ZERO;
        assert!(c.validate().is_err());

        let mut c = ScenarioConfig::baseline(VirusProfile::virus1());
        c.sample_step = SimDuration::ZERO;
        assert!(c.validate().is_err());

        let mut c = ScenarioConfig::baseline(VirusProfile::virus1());
        c.initial_infections = 0;
        assert!(c.validate().is_err());

        let mut c = ScenarioConfig::baseline(VirusProfile::virus1());
        c.initial_infections = 10_000;
        assert!(c.validate().is_err());

        let mut c = ScenarioConfig::baseline(VirusProfile::virus1());
        c.population.vulnerable_fraction = 1.4;
        assert!(c.validate().is_err());

        let mut c = ScenarioConfig::baseline(VirusProfile::virus1());
        c.virus.recipients_per_message = 0;
        assert!(c.validate().is_err());

        let mut c = ScenarioConfig::baseline(VirusProfile::virus1());
        c.response.blacklist = Some(Blacklist { threshold: 0 });
        assert!(c.validate().is_err());

        let mut c = ScenarioConfig::baseline(VirusProfile::virus1());
        c.event_budget = Some(0);
        assert!(c.validate().is_err());
        c.event_budget = Some(1);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn config_error_display() {
        let e = ConfigError::invalid("horizon", "must be positive");
        assert_eq!(e.to_string(), "invalid scenario configuration: horizon: must be positive");
        let e = ConfigError::out_of_range("gateway_capacity_per_hour", 5000, "1..=3600");
        assert_eq!(
            e.to_string(),
            "invalid scenario configuration: gateway_capacity_per_hour 5000 must be in 1..=3600"
        );
        assert_eq!(e.field(), Some("gateway_capacity_per_hour"));
        let e = ConfigError::run("event budget 10 exceeded");
        assert!(e.to_string().contains("event budget"));
        assert_eq!(e.field(), None);
    }

    #[test]
    fn config_error_serializes_with_kind_tag() {
        let e = ConfigError::out_of_range("population.vulnerable_fraction", 1.4, "[0, 1]");
        let json = serde_json::to_string(&e).unwrap();
        assert!(json.contains("\"kind\":\"out_of_range\""), "got {json}");
        assert!(json.contains("\"field\":\"population.vulnerable_fraction\""), "got {json}");
        let back: ConfigError = serde_json::from_str(&json).unwrap();
        assert_eq!(back, e);
    }
}
