//! Runs the monitoring false-positive extension study: with legitimate
//! traffic modelled, how low can the monitoring threshold go before it
//! starts flagging innocent users — and what does each setting buy in
//! containment of Virus 3?
use mpvsim_core::figures::false_positive_study;

fn main() {
    let opts = match mpvsim_cli::parse_options(std::env::args().skip(1))
        .and_then(|cli| cli.figure_with_observer())
    {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };
    eprintln!("running monitoring false-positive study …");
    match false_positive_study(&opts) {
        Ok(results) => {
            println!(
                "== Extension — Monitoring False Positives (Virus 3 + legitimate traffic) ==\n"
            );
            println!(
                "{:<16} {:>10} {:>12} {:>14} {:>16}",
                "threshold", "infected", "throttled", "false pos.", "FP per phone-day"
            );
            for r in &results {
                let reps = r.result.runs.len() as f64;
                let throttled: u64 = r.result.runs.iter().map(|x| x.stats.throttled_phones).sum();
                let fp: u64 = r.result.runs.iter().map(|x| x.stats.false_positive_throttles).sum();
                let population = opts.population as f64;
                let days = 25.0 / 24.0;
                println!(
                    "{:<16} {:>10.1} {:>12.1} {:>14.1} {:>16.4}",
                    r.label,
                    r.result.final_infected.mean,
                    throttled as f64 / reps,
                    fp as f64 / reps,
                    fp as f64 / reps / (population * days),
                );
            }
            println!(
                "\nLower thresholds contain the virus harder but flag more innocent\n\
                 users — the provider picks the operating point (the paper raises\n\
                 the trade-off for blacklisting but could not quantify it without\n\
                 legitimate traffic in the model)."
            );
        }
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(1);
        }
    }
}
