//! Structural analysis of generated contact networks.
//!
//! Used to validate that generated topologies have the properties the paper
//! assumes: mean contact-list size on target, a heavy (power-law) degree
//! tail, and a dominant connected component that the virus can traverse.

use std::collections::VecDeque;

use crate::graph::{Graph, NodeId};

/// Summary statistics of a graph's degree sequence.
#[derive(Debug, Clone, PartialEq)]
pub struct DegreeStats {
    /// Mean degree (contact-list size).
    pub mean: f64,
    /// Smallest degree.
    pub min: usize,
    /// Largest degree.
    pub max: usize,
    /// Population variance of the degree sequence.
    pub variance: f64,
    /// Number of isolated nodes (degree 0) — phones no contact-list virus
    /// can ever reach.
    pub isolated: usize,
}

/// Computes [`DegreeStats`] for `g`.
///
/// Returns zeros for an empty graph.
pub fn degree_stats(g: &Graph) -> DegreeStats {
    let n = g.node_count();
    if n == 0 {
        return DegreeStats { mean: 0.0, min: 0, max: 0, variance: 0.0, isolated: 0 };
    }
    let degrees: Vec<usize> = g.nodes().map(|v| g.degree(v)).collect();
    let mean = degrees.iter().sum::<usize>() as f64 / n as f64;
    let variance = degrees.iter().map(|&d| (d as f64 - mean).powi(2)).sum::<f64>() / n as f64;
    DegreeStats {
        mean,
        min: *degrees.iter().min().expect("nonempty"),
        max: *degrees.iter().max().expect("nonempty"),
        variance,
        isolated: degrees.iter().filter(|&&d| d == 0).count(),
    }
}

/// A histogram of degrees: `histogram[d]` = number of nodes of degree `d`.
pub fn degree_histogram(g: &Graph) -> Vec<usize> {
    let max = g.nodes().map(|v| g.degree(v)).max().unwrap_or(0);
    let mut hist = vec![0usize; max + 1];
    for v in g.nodes() {
        hist[g.degree(v)] += 1;
    }
    hist
}

/// Sizes of all connected components, largest first.
pub fn component_sizes(g: &Graph) -> Vec<usize> {
    let n = g.node_count();
    let mut visited = vec![false; n];
    let mut sizes = Vec::new();
    let mut queue = VecDeque::new();
    for start in 0..n {
        if visited[start] {
            continue;
        }
        visited[start] = true;
        queue.push_back(NodeId(start));
        let mut size = 0usize;
        while let Some(v) = queue.pop_front() {
            size += 1;
            for &w in g.neighbors(v) {
                if !visited[w.0] {
                    visited[w.0] = true;
                    queue.push_back(w);
                }
            }
        }
        sizes.push(size);
    }
    sizes.sort_unstable_by(|a, b| b.cmp(a));
    sizes
}

/// Fraction of nodes in the largest connected component (0 for empty).
pub fn largest_component_fraction(g: &Graph) -> f64 {
    let n = g.node_count();
    if n == 0 {
        return 0.0;
    }
    component_sizes(g).first().copied().unwrap_or(0) as f64 / n as f64
}

/// Global clustering coefficient: `3 × triangles / connected triples`.
///
/// Returns 0 when the graph has no connected triples.
pub fn global_clustering(g: &Graph) -> f64 {
    let mut triangles = 0u64;
    let mut triples = 0u64;
    for v in g.nodes() {
        let neigh = g.neighbors(v);
        let d = neigh.len() as u64;
        triples += d * d.saturating_sub(1) / 2;
        for (i, &a) in neigh.iter().enumerate() {
            for &b in &neigh[i + 1..] {
                if g.contains_edge(a, b) {
                    triangles += 1;
                }
            }
        }
    }
    if triples == 0 {
        0.0
    } else {
        // Each triangle is counted once per corner = 3 times in `triangles`
        // as written (once per vertex v with both others adjacent).
        triangles as f64 / triples as f64
    }
}

/// Least-squares slope of `log(count)` vs `log(degree)` over the nonzero
/// histogram bins with degree ≥ `min_degree`.
///
/// For a power-law degree distribution `P(d) ∝ d^(-α)` this estimates
/// `-α`; for an Erdős–Rényi graph the tail decays faster than any power
/// and the fit is much steeper. Returns `None` when fewer than 3 distinct
/// degrees qualify.
pub fn log_log_tail_slope(g: &Graph, min_degree: usize) -> Option<f64> {
    let hist = degree_histogram(g);
    let points: Vec<(f64, f64)> = hist
        .iter()
        .enumerate()
        .filter(|&(d, &c)| d >= min_degree.max(1) && c > 0)
        .map(|(d, &c)| ((d as f64).ln(), (c as f64).ln()))
        .collect();
    if points.len() < 3 {
        return None;
    }
    let n = points.len() as f64;
    let sx: f64 = points.iter().map(|p| p.0).sum();
    let sy: f64 = points.iter().map(|p| p.1).sum();
    let sxx: f64 = points.iter().map(|p| p.0 * p.0).sum();
    let sxy: f64 = points.iter().map(|p| p.0 * p.1).sum();
    let denom = n * sxx - sx * sx;
    if denom.abs() < 1e-12 {
        return None;
    }
    Some((n * sxy - sx * sy) / denom)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::GraphSpec;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    fn path_graph(n: usize) -> Graph {
        let mut g = Graph::with_nodes(n);
        for i in 0..n.saturating_sub(1) {
            g.add_edge(NodeId(i), NodeId(i + 1));
        }
        g
    }

    #[test]
    fn degree_stats_on_path() {
        let g = path_graph(4);
        let s = degree_stats(&g);
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 2);
        assert!((s.mean - 1.5).abs() < 1e-12);
        assert_eq!(s.isolated, 0);
    }

    #[test]
    fn degree_stats_empty_graph() {
        let s = degree_stats(&Graph::new());
        assert_eq!(s.mean, 0.0);
        assert_eq!(s.isolated, 0);
    }

    #[test]
    fn isolated_nodes_counted() {
        let mut g = Graph::with_nodes(5);
        g.add_edge(NodeId(0), NodeId(1));
        assert_eq!(degree_stats(&g).isolated, 3);
    }

    #[test]
    fn histogram_sums_to_node_count() {
        let g = GraphSpec::erdos_renyi(200, 6.0).generate(&mut rng(1)).unwrap();
        let hist = degree_histogram(&g);
        assert_eq!(hist.iter().sum::<usize>(), 200);
    }

    #[test]
    fn components_of_disconnected_graph() {
        let mut g = Graph::with_nodes(6);
        g.add_edge(NodeId(0), NodeId(1));
        g.add_edge(NodeId(1), NodeId(2));
        g.add_edge(NodeId(3), NodeId(4));
        let sizes = component_sizes(&g);
        assert_eq!(sizes, vec![3, 2, 1]);
        assert!((largest_component_fraction(&g) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn complete_graph_is_one_component_with_clustering_one() {
        let g = GraphSpec::complete(8).generate(&mut rng(2)).unwrap();
        assert_eq!(component_sizes(&g), vec![8]);
        assert!((global_clustering(&g) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn path_has_zero_clustering() {
        assert_eq!(global_clustering(&path_graph(10)), 0.0);
    }

    #[test]
    fn triangle_has_clustering_one() {
        let mut g = Graph::with_nodes(3);
        g.add_edge(NodeId(0), NodeId(1));
        g.add_edge(NodeId(1), NodeId(2));
        g.add_edge(NodeId(2), NodeId(0));
        assert!((global_clustering(&g) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn dense_power_law_graph_is_mostly_connected() {
        // The paper's topology: 1000 nodes, mean contact-list size 80.
        // Virtually the whole population must be reachable.
        let g = GraphSpec::power_law(1000, 80.0).generate(&mut rng(3)).unwrap();
        assert!(largest_component_fraction(&g) > 0.98);
    }

    #[test]
    fn power_law_tail_flatter_than_er_tail() {
        let pl = GraphSpec::power_law(2000, 20.0).generate(&mut rng(4)).unwrap();
        let er = GraphSpec::erdos_renyi(2000, 20.0).generate(&mut rng(5)).unwrap();
        let slope_pl = log_log_tail_slope(&pl, 10).expect("enough bins");
        let slope_er = log_log_tail_slope(&er, 10).expect("enough bins");
        // Both negative; the power-law decays more slowly (slope closer to 0
        // on the high-degree side, i.e. greater slope value).
        assert!(slope_pl < 0.0 && slope_er < 0.0);
        assert!(
            slope_pl > slope_er,
            "power-law slope {slope_pl} should be flatter than ER slope {slope_er}"
        );
        // The unambiguous heavy-tail signature: the degree variance of the
        // power-law graph dwarfs the (≈ Poisson) ER variance.
        let var_pl = degree_stats(&pl).variance;
        let var_er = degree_stats(&er).variance;
        assert!(
            var_pl > 3.0 * var_er,
            "power-law degree variance {var_pl} not ≫ ER variance {var_er}"
        );
    }

    #[test]
    fn tail_slope_requires_enough_points() {
        assert_eq!(log_log_tail_slope(&path_graph(3), 1), None);
        assert_eq!(log_log_tail_slope(&Graph::new(), 1), None);
    }

    #[test]
    fn empty_and_single_node_edge_cases() {
        assert_eq!(component_sizes(&Graph::new()), Vec::<usize>::new());
        assert_eq!(largest_component_fraction(&Graph::new()), 0.0);
        let one = Graph::with_nodes(1);
        assert_eq!(component_sizes(&one), vec![1]);
        assert_eq!(global_clustering(&one), 0.0);
    }
}
