//! A single phone: identity, vulnerability and health.
//!
//! Contact lists live in [`Population`](crate::Population)'s shared CSR
//! adjacency (one flat array for the whole population) rather than in a
//! per-phone `Vec`, so the hot path never chases per-phone heap blocks;
//! look contacts up with `Population::contacts`.

use std::fmt;

use serde::{Deserialize, Serialize};

/// A phone's identity — its "phone number" in the model's dense numbering.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct PhoneId(pub u32);

impl PhoneId {
    /// The dense index of this phone.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for PhoneId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "phone#{}", self.0)
    }
}

impl From<usize> for PhoneId {
    fn from(i: usize) -> Self {
        PhoneId(u32::try_from(i).expect("phone index exceeds u32"))
    }
}

/// A phone's health with respect to the virus under study.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Health {
    /// Runs the vulnerable platform and can be infected.
    Susceptible,
    /// Does not run the vulnerable platform; infection attempts are no-ops.
    /// (The paper designates 20 % of the population this way.)
    NotVulnerable,
    /// Infected: its sending machinery is enabled.
    Infected,
    /// Patched before infection: can never be infected.
    Immunized,
}

/// One phone submodel, mirroring §4.1 of the paper: a receiving side that
/// is always active, and a sending side that the epidemic model enables on
/// infection.
///
/// The phone also tracks provider-side response flags that affect it
/// directly (patched-while-infected "silenced" state, blacklist,
/// monitoring throttle). Its contact list is held by the population's CSR
/// adjacency, not here.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Phone {
    id: PhoneId,
    health: Health,
    /// Number of infected MMS messages whose attachments this phone's user
    /// has been offered so far; drives the declining acceptance curve.
    infected_msgs_received: u32,
    /// Patched after infection: propagation attempts are stopped.
    silenced: bool,
    /// Blacklisted by the provider: all outgoing MMS blocked.
    blacklisted: bool,
    /// Flagged by the monitoring mechanism: outgoing sends are throttled.
    throttled: bool,
}

impl Phone {
    /// Creates a healthy phone.
    pub fn new(id: PhoneId, vulnerable: bool) -> Self {
        Phone {
            id,
            health: if vulnerable { Health::Susceptible } else { Health::NotVulnerable },
            infected_msgs_received: 0,
            silenced: false,
            blacklisted: false,
            throttled: false,
        }
    }

    /// This phone's number.
    pub fn id(&self) -> PhoneId {
        self.id
    }

    /// Current health.
    pub fn health(&self) -> Health {
        self.health
    }

    /// True when an accepted infected attachment would infect this phone.
    pub fn is_susceptible(&self) -> bool {
        self.health == Health::Susceptible
    }

    /// True when this phone is infected (even if silenced or blacklisted).
    pub fn is_infected(&self) -> bool {
        self.health == Health::Infected
    }

    /// True when this phone's virus can still emit messages: infected and
    /// neither silenced by a patch nor blacklisted by the provider.
    pub fn can_propagate(&self) -> bool {
        self.is_infected() && !self.silenced && !self.blacklisted
    }

    /// Number of infected messages offered to this user so far.
    pub fn infected_msgs_received(&self) -> u32 {
        self.infected_msgs_received
    }

    /// Records that another infected message reached this phone's inbox;
    /// returns the new total (i.e. this message's ordinal `n`, 1-based).
    pub fn record_infected_message(&mut self) -> u32 {
        self.infected_msgs_received += 1;
        self.infected_msgs_received
    }

    /// Infects the phone.
    ///
    /// Returns `true` if the phone transitioned to [`Health::Infected`];
    /// `false` when it was not susceptible (not vulnerable, already
    /// infected, or immunized) — in which case nothing changes.
    pub fn infect(&mut self) -> bool {
        if self.health == Health::Susceptible {
            self.health = Health::Infected;
            true
        } else {
            false
        }
    }

    /// Applies an immunization patch (§3.2 of the paper): a susceptible or
    /// not-vulnerable phone becomes [`Health::Immunized`]; an infected
    /// phone stays infected but is *silenced* (propagation stops).
    pub fn apply_patch(&mut self) {
        match self.health {
            Health::Susceptible | Health::NotVulnerable => self.health = Health::Immunized,
            Health::Infected => self.silenced = true,
            Health::Immunized => {}
        }
    }

    /// True when a patch has silenced this (infected) phone.
    pub fn is_silenced(&self) -> bool {
        self.silenced
    }

    /// Places the phone on the provider's blacklist (all outgoing MMS
    /// blocked).
    pub fn blacklist(&mut self) {
        self.blacklisted = true;
    }

    /// True when blacklisted.
    pub fn is_blacklisted(&self) -> bool {
        self.blacklisted
    }

    /// Marks the phone as flagged by the monitoring mechanism.
    pub fn throttle(&mut self) {
        self.throttled = true;
    }

    /// True when the monitoring mechanism has flagged this phone.
    pub fn is_throttled(&self) -> bool {
        self.throttled
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn phone(vulnerable: bool) -> Phone {
        Phone::new(PhoneId(7), vulnerable)
    }

    #[test]
    fn new_phone_state() {
        let p = phone(true);
        assert_eq!(p.id(), PhoneId(7));
        assert_eq!(p.health(), Health::Susceptible);
        assert!(p.is_susceptible());
        assert!(!p.is_infected());
        assert_eq!(p.infected_msgs_received(), 0);
        let p = phone(false);
        assert_eq!(p.health(), Health::NotVulnerable);
        assert!(!p.is_susceptible());
    }

    #[test]
    fn infect_susceptible_succeeds() {
        let mut p = phone(true);
        assert!(p.infect());
        assert!(p.is_infected());
        assert!(p.can_propagate());
        // Idempotent failure on re-infection.
        assert!(!p.infect());
        assert!(p.is_infected());
    }

    #[test]
    fn infect_not_vulnerable_fails() {
        let mut p = phone(false);
        assert!(!p.infect());
        assert_eq!(p.health(), Health::NotVulnerable);
    }

    #[test]
    fn patch_immunizes_healthy() {
        let mut p = phone(true);
        p.apply_patch();
        assert_eq!(p.health(), Health::Immunized);
        assert!(!p.infect(), "immunized phone cannot be infected");
    }

    #[test]
    fn patch_on_not_vulnerable_immunizes() {
        let mut p = phone(false);
        p.apply_patch();
        assert_eq!(p.health(), Health::Immunized);
    }

    #[test]
    fn patch_silences_infected() {
        let mut p = phone(true);
        p.infect();
        p.apply_patch();
        assert!(p.is_infected(), "patch does not cure");
        assert!(p.is_silenced());
        assert!(!p.can_propagate());
    }

    #[test]
    fn patch_idempotent_on_immunized() {
        let mut p = phone(true);
        p.apply_patch();
        p.apply_patch();
        assert_eq!(p.health(), Health::Immunized);
    }

    #[test]
    fn blacklist_stops_propagation_but_not_infection_state() {
        let mut p = phone(true);
        p.infect();
        p.blacklist();
        assert!(p.is_blacklisted());
        assert!(p.is_infected());
        assert!(!p.can_propagate());
    }

    #[test]
    fn throttle_flag_does_not_block_propagation() {
        let mut p = phone(true);
        p.infect();
        p.throttle();
        assert!(p.is_throttled());
        assert!(p.can_propagate(), "monitoring slows, it does not block");
    }

    #[test]
    fn infected_message_counter_is_ordinal() {
        let mut p = phone(true);
        assert_eq!(p.record_infected_message(), 1);
        assert_eq!(p.record_infected_message(), 2);
        assert_eq!(p.infected_msgs_received(), 2);
    }

    #[test]
    fn display_and_from_usize() {
        assert_eq!(PhoneId(3).to_string(), "phone#3");
        assert_eq!(PhoneId::from(9usize), PhoneId(9));
        assert_eq!(PhoneId(4).index(), 4);
    }
}
