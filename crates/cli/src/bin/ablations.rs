//! Deprecated shim: forwards to `mpvsim ablations`.
fn main() {
    mpvsim_cli::commands::deprecated_shim("ablations");
}
