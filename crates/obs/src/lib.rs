//! Dependency-free observability layer for the mpvsim workspace.
//!
//! Two halves, both std-only:
//!
//! - [`metrics`]: a global registry of atomic counters, gauges, and
//!   log-bucketed histograms with a Prometheus text-format 0.0.4
//!   exposition writer ([`metrics::Registry::render_prometheus`]).
//! - [`log`]: structured leveled logging — JSONL or human-readable text
//!   events with a target, level, message, `key=value` fields, and span
//!   timing — filtered by an `MPVSIM_LOG` environment spec.
//!
//! Everything here is determinism-neutral by construction: metrics are
//! process-global atomics read only by the exposition writer, and log
//! lines go to stderr (or a caller-supplied sink). Neither ever feeds
//! back into simulation state, golden hashes, or stored artifacts —
//! the same contract PR 4's probes and PR 7's `inbox_dropped` follow.
//!
//! Recording can be disabled at runtime ([`metrics::set_enabled`]) so
//! the perfsuite can measure the overhead of the enabled registry
//! against the no-op path in a single process.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod log;
pub mod metrics;

pub use log::{Level, LogFormat, Span};
pub use metrics::{Counter, Gauge, Histogram, Registry};
