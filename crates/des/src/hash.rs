//! Trajectory hashing for golden-file regression checks.
//!
//! The engine's headline guarantee is bit-identical trajectories for a
//! given seed, regardless of FEL backend, thread count, or attached
//! observers. To pin that guarantee in a *compact committed artefact*,
//! the validation layer folds every replication's output bytes into a
//! single 64-bit digest. The hasher here is a hand-rolled FNV-1a: the
//! workspace deliberately carries no hashing crate, the digest is for
//! drift *detection* (not adversarial integrity), and FNV-1a over a
//! well-defined byte stream is stable across platforms and releases —
//! unlike `std`'s `DefaultHasher`, whose algorithm is explicitly
//! unspecified.
//!
//! Floating-point values are folded via [`f64::to_bits`] in little-endian
//! byte order, so a hash match certifies *bit* equality of the
//! trajectory, not approximate agreement.

/// An incremental [FNV-1a] 64-bit hasher with a stable, documented
/// byte-stream semantics.
///
/// [FNV-1a]: http://www.isthe.com/chongo/tech/comp/fnv/
///
/// ```rust
/// use mpvsim_des::hash::Fnv1a64;
///
/// let mut h = Fnv1a64::new();
/// h.write_f64(1.5);
/// h.write_u64(7);
/// let a = h.finish();
///
/// let mut h2 = Fnv1a64::new();
/// h2.write_f64(1.5);
/// h2.write_u64(7);
/// assert_eq!(a, h2.finish());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fnv1a64 {
    state: u64,
}

const FNV_OFFSET_BASIS: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

impl Fnv1a64 {
    /// A fresh hasher at the FNV-1a offset basis.
    pub fn new() -> Self {
        Fnv1a64 { state: FNV_OFFSET_BASIS }
    }

    /// Folds raw bytes into the digest, in order.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= u64::from(b);
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
    }

    /// Folds a `u64` as its eight little-endian bytes.
    pub fn write_u64(&mut self, value: u64) {
        self.write_bytes(&value.to_le_bytes());
    }

    /// Folds an `f64` via its IEEE-754 bit pattern (little-endian).
    ///
    /// Two floats hash equal iff they are bit-identical; `0.0` and
    /// `-0.0` hash differently, and every NaN payload is distinct.
    pub fn write_f64(&mut self, value: f64) {
        self.write_u64(value.to_bits());
    }

    /// Folds a whole `f64` slice, length-prefixed so that adjacent
    /// slices cannot alias (e.g. `[1.0] ++ []` vs `[] ++ [1.0]`).
    pub fn write_f64_slice(&mut self, values: &[f64]) {
        self.write_u64(values.len() as u64);
        for &v in values {
            self.write_f64(v);
        }
    }

    /// The current digest. The hasher may keep accumulating afterwards.
    pub fn finish(&self) -> u64 {
        self.state
    }
}

impl Default for Fnv1a64 {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_reference_vectors() {
        // Published FNV-1a 64-bit test vectors.
        let digest = |s: &str| {
            let mut h = Fnv1a64::new();
            h.write_bytes(s.as_bytes());
            h.finish()
        };
        assert_eq!(digest(""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(digest("a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(digest("foobar"), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn order_sensitive() {
        let mut a = Fnv1a64::new();
        a.write_u64(1);
        a.write_u64(2);
        let mut b = Fnv1a64::new();
        b.write_u64(2);
        b.write_u64(1);
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn distinguishes_close_floats() {
        let mut a = Fnv1a64::new();
        a.write_f64(1.0);
        let mut b = Fnv1a64::new();
        b.write_f64(1.0 + f64::EPSILON);
        assert_ne!(a.finish(), b.finish());

        let mut pz = Fnv1a64::new();
        pz.write_f64(0.0);
        let mut nz = Fnv1a64::new();
        nz.write_f64(-0.0);
        assert_ne!(pz.finish(), nz.finish(), "signed zeros are distinct bit patterns");
    }

    #[test]
    fn length_prefix_prevents_aliasing() {
        let mut a = Fnv1a64::new();
        a.write_f64_slice(&[1.0]);
        a.write_f64_slice(&[]);
        let mut b = Fnv1a64::new();
        b.write_f64_slice(&[]);
        b.write_f64_slice(&[1.0]);
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn incremental_equals_one_shot() {
        let mut inc = Fnv1a64::new();
        inc.write_bytes(b"foo");
        inc.write_bytes(b"bar");
        let mut one = Fnv1a64::new();
        one.write_bytes(b"foobar");
        assert_eq!(inc.finish(), one.finish());
    }
}
