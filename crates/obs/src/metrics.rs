//! Global metrics registry: atomic counters, gauges, and log-bucketed
//! histograms with Prometheus text-format 0.0.4 exposition.
//!
//! Instruments are cheap cloneable handles over shared atomics. Looking
//! one up by `(name, labels)` is a locked map operation — do it once at
//! setup and keep the handle; recording on a handle is a single relaxed
//! atomic op (plus one relaxed load of the registry's enable flag).
//!
//! Determinism: nothing in here is ever read by simulation code. The
//! registry is write-only from the engine's perspective; the only reader
//! is [`Registry::render_prometheus`], which serves `GET /v1/metrics`.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// The process-global registry. All mpvsim crates record here; `mpvsim
/// serve` exposes it at `GET /v1/metrics`.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

/// Enable or disable recording on the global registry. When off, every
/// `inc`/`add`/`set`/`observe` on a global-registry handle returns after
/// a single relaxed load — the no-op path the perfsuite's
/// `metrics_overhead` column measures against.
pub fn set_enabled(on: bool) {
    global().set_recording(on);
}

/// Whether recording on the global registry is enabled.
pub fn enabled() -> bool {
    global().recording()
}

/// Monotonically increasing counter.
#[derive(Clone)]
pub struct Counter {
    value: Arc<AtomicU64>,
    enabled: Arc<AtomicBool>,
}

impl Counter {
    /// Increment by one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Increment by `n`.
    pub fn add(&self, n: u64) {
        if self.enabled.load(Ordering::Relaxed) {
            self.value.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Gauge: a value that can go up and down.
#[derive(Clone)]
pub struct Gauge {
    value: Arc<AtomicI64>,
    enabled: Arc<AtomicBool>,
}

impl Gauge {
    /// Set to an absolute value.
    pub fn set(&self, v: i64) {
        if self.enabled.load(Ordering::Relaxed) {
            self.value.store(v, Ordering::Relaxed);
        }
    }

    /// Add `n` (may be negative).
    pub fn add(&self, n: i64) {
        if self.enabled.load(Ordering::Relaxed) {
            self.value.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Increment by one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Decrement by one.
    pub fn dec(&self) {
        self.add(-1);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

struct HistogramInner {
    /// Upper bounds of the finite buckets, strictly increasing. An
    /// implicit `+Inf` bucket follows.
    bounds: Vec<f64>,
    /// Per-bucket (non-cumulative) counts; `len() == bounds.len() + 1`,
    /// the last slot being the `+Inf` overflow bucket.
    buckets: Vec<AtomicU64>,
    /// Sum of observed values, stored as f64 bits (CAS loop on add).
    sum_bits: AtomicU64,
    enabled: Arc<AtomicBool>,
}

/// Histogram with fixed upper-bound buckets (Prometheus `le` semantics:
/// a bucket counts observations `<=` its bound).
#[derive(Clone)]
pub struct Histogram(Arc<HistogramInner>);

impl Histogram {
    /// Record one observation.
    pub fn observe(&self, v: f64) {
        let inner = &self.0;
        if !inner.enabled.load(Ordering::Relaxed) {
            return;
        }
        // First bucket whose bound is >= v; values above every bound
        // land in the trailing +Inf slot.
        let idx = inner.bounds.partition_point(|b| *b < v);
        inner.buckets[idx].fetch_add(1, Ordering::Relaxed);
        let mut old = inner.sum_bits.load(Ordering::Relaxed);
        loop {
            let new = (f64::from_bits(old) + v).to_bits();
            match inner.sum_bits.compare_exchange_weak(
                old,
                new,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(cur) => old = cur,
            }
        }
    }

    /// Record a duration in seconds.
    pub fn observe_duration(&self, d: std::time::Duration) {
        self.observe(d.as_secs_f64());
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.0.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }

    /// Sum of observed values.
    pub fn sum(&self) -> f64 {
        f64::from_bits(self.0.sum_bits.load(Ordering::Relaxed))
    }

    /// Cumulative count of observations `<=` each finite bound (same
    /// order as the constructor's bounds), exposed for tests.
    pub fn cumulative_buckets(&self) -> Vec<u64> {
        let mut acc = 0;
        self.0
            .bounds
            .iter()
            .enumerate()
            .map(|(i, _)| {
                acc += self.0.buckets[i].load(Ordering::Relaxed);
                acc
            })
            .collect()
    }
}

/// `count` log-spaced bucket bounds starting at `start`, each `factor`
/// times the previous. Panics if `start <= 0`, `factor <= 1`, or
/// `count == 0`.
pub fn exponential_buckets(start: f64, factor: f64, count: usize) -> Vec<f64> {
    assert!(start > 0.0 && factor > 1.0 && count > 0, "invalid exponential bucket spec");
    let mut bounds = Vec::with_capacity(count);
    let mut b = start;
    for _ in 0..count {
        bounds.push(b);
        b *= factor;
    }
    bounds
}

/// Default latency bucket grid: 100 µs to ~100 s, log-spaced ×4.
/// Covers everything from a cache-hit HTTP response to a large DES
/// replication in 11 buckets.
pub fn default_latency_buckets() -> Vec<f64> {
    exponential_buckets(1e-4, 4.0, 11)
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Kind {
    Counter,
    Gauge,
    Histogram,
}

impl Kind {
    fn as_str(self) -> &'static str {
        match self {
            Kind::Counter => "counter",
            Kind::Gauge => "gauge",
            Kind::Histogram => "histogram",
        }
    }
}

enum Instrument {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

type LabelSet = Vec<(String, String)>;

struct Family {
    help: String,
    kind: Kind,
    series: BTreeMap<LabelSet, Instrument>,
}

/// A named collection of metric families. Use [`global()`] for the
/// process-wide registry; fresh registries are for tests.
pub struct Registry {
    enabled: Arc<AtomicBool>,
    families: Mutex<BTreeMap<String, Family>>,
}

impl Default for Registry {
    fn default() -> Self {
        Self::new()
    }
}

impl Registry {
    /// Create an empty registry with recording enabled.
    pub fn new() -> Self {
        Registry { enabled: Arc::new(AtomicBool::new(true)), families: Mutex::new(BTreeMap::new()) }
    }

    /// Enable or disable recording for every handle minted from this
    /// registry (existing and future).
    pub fn set_recording(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Whether recording is enabled.
    pub fn recording(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    fn instrument<F>(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        kind: Kind,
        make: F,
    ) -> Instrument
    where
        F: FnOnce(Arc<AtomicBool>) -> Instrument,
    {
        assert!(valid_name(name), "invalid metric name: {name:?}");
        for (k, _) in labels {
            assert!(valid_name(k), "invalid label name: {k:?}");
        }
        let mut key: LabelSet =
            labels.iter().map(|(k, v)| (k.to_string(), v.to_string())).collect();
        key.sort();
        let mut families = self.families.lock().expect("metrics registry poisoned");
        let family = families.entry(name.to_string()).or_insert_with(|| Family {
            help: help.to_string(),
            kind,
            series: BTreeMap::new(),
        });
        assert!(
            family.kind == kind,
            "metric {name:?} registered twice with different kinds ({} vs {})",
            family.kind.as_str(),
            kind.as_str()
        );
        let instrument =
            family.series.entry(key).or_insert_with(|| make(Arc::clone(&self.enabled)));
        match instrument {
            Instrument::Counter(c) => Instrument::Counter(c.clone()),
            Instrument::Gauge(g) => Instrument::Gauge(g.clone()),
            Instrument::Histogram(h) => Instrument::Histogram(h.clone()),
        }
    }

    /// Counter with no labels.
    pub fn counter(&self, name: &str, help: &str) -> Counter {
        self.counter_with(name, help, &[])
    }

    /// Counter for one `(name, labels)` series. Repeat lookups return
    /// handles over the same atomic.
    pub fn counter_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Counter {
        match self.instrument(name, help, labels, Kind::Counter, |enabled| {
            Instrument::Counter(Counter { value: Arc::new(AtomicU64::new(0)), enabled })
        }) {
            Instrument::Counter(c) => c,
            _ => unreachable!(),
        }
    }

    /// Gauge with no labels.
    pub fn gauge(&self, name: &str, help: &str) -> Gauge {
        self.gauge_with(name, help, &[])
    }

    /// Gauge for one `(name, labels)` series.
    pub fn gauge_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Gauge {
        match self.instrument(name, help, labels, Kind::Gauge, |enabled| {
            Instrument::Gauge(Gauge { value: Arc::new(AtomicI64::new(0)), enabled })
        }) {
            Instrument::Gauge(g) => g,
            _ => unreachable!(),
        }
    }

    /// Histogram with no labels over the given bucket bounds.
    pub fn histogram(&self, name: &str, help: &str, bounds: &[f64]) -> Histogram {
        self.histogram_with(name, help, &[], bounds)
    }

    /// Histogram for one `(name, labels)` series. `bounds` must be
    /// strictly increasing; an implicit `+Inf` bucket is appended. The
    /// bounds of the first registration of a series win.
    pub fn histogram_with(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        bounds: &[f64],
    ) -> Histogram {
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing"
        );
        match self.instrument(name, help, labels, Kind::Histogram, |enabled| {
            let buckets = (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect();
            Instrument::Histogram(Histogram(Arc::new(HistogramInner {
                bounds: bounds.to_vec(),
                buckets,
                sum_bits: AtomicU64::new(0f64.to_bits()),
                enabled,
            })))
        }) {
            Instrument::Histogram(h) => h,
            _ => unreachable!(),
        }
    }

    /// Render the whole registry in Prometheus text exposition format
    /// 0.0.4. Families are ordered by name and series by label set, so
    /// the output is deterministic given the same recorded values.
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        let families = self.families.lock().expect("metrics registry poisoned");
        for (name, family) in families.iter() {
            let _ = writeln!(out, "# HELP {name} {}", escape_help(&family.help));
            let _ = writeln!(out, "# TYPE {name} {}", family.kind.as_str());
            for (labels, instrument) in &family.series {
                match instrument {
                    Instrument::Counter(c) => {
                        let _ = writeln!(out, "{name}{} {}", render_labels(labels, None), c.get());
                    }
                    Instrument::Gauge(g) => {
                        let _ = writeln!(out, "{name}{} {}", render_labels(labels, None), g.get());
                    }
                    Instrument::Histogram(h) => {
                        let mut acc = 0u64;
                        for (i, bound) in h.0.bounds.iter().enumerate() {
                            acc += h.0.buckets[i].load(Ordering::Relaxed);
                            let le = format_f64(*bound);
                            let _ = writeln!(
                                out,
                                "{name}_bucket{} {acc}",
                                render_labels(labels, Some(&le))
                            );
                        }
                        acc += h.0.buckets[h.0.bounds.len()].load(Ordering::Relaxed);
                        let _ = writeln!(
                            out,
                            "{name}_bucket{} {acc}",
                            render_labels(labels, Some("+Inf"))
                        );
                        let _ = writeln!(
                            out,
                            "{name}_sum{} {}",
                            render_labels(labels, None),
                            format_f64(h.sum())
                        );
                        let _ = writeln!(out, "{name}_count{} {acc}", render_labels(labels, None));
                    }
                }
            }
        }
        out
    }
}

/// Prometheus metric/label names: `[a-zA-Z_][a-zA-Z0-9_]*` (we skip
/// `:`, which is reserved for recording rules).
fn valid_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

/// Render a label set as `{k="v",...}`, with `le` appended last when
/// given (histogram bucket lines). Empty set with no `le` renders as "".
fn render_labels(labels: &LabelSet, le: Option<&str>) -> String {
    if labels.is_empty() && le.is_none() {
        return String::new();
    }
    let mut out = String::from("{");
    let mut first = true;
    for (k, v) in labels {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(out, "{k}=\"{}\"", escape_label(v));
    }
    if let Some(le) = le {
        if !first {
            out.push(',');
        }
        let _ = write!(out, "le=\"{le}\"");
    }
    out.push('}');
    out
}

fn escape_help(s: &str) -> String {
    s.replace('\\', "\\\\").replace('\n', "\\n")
}

fn escape_label(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"").replace('\n', "\\n")
}

/// Shortest-round-trip float formatting (Rust's `Display` for f64),
/// with `+Inf` spelled the Prometheus way.
fn format_f64(v: f64) -> String {
    if v == f64::INFINITY {
        return "+Inf".to_string();
    }
    format!("{v}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let reg = Registry::new();
        let c = reg.counter("c_total", "a counter");
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        let g = reg.gauge("g", "a gauge");
        g.set(7);
        g.dec();
        g.add(-2);
        assert_eq!(g.get(), 4);
        // Same series → same atomic.
        let c2 = reg.counter("c_total", "a counter");
        c2.inc();
        assert_eq!(c.get(), 6);
    }

    #[test]
    fn histogram_bucket_boundaries() {
        let reg = Registry::new();
        let h = reg.histogram("h_seconds", "latency", &[1.0, 2.0, 4.0]);
        // Exactly on an edge: le is inclusive, so 2.0 lands in the 2.0 bucket.
        h.observe(2.0);
        // Below the lowest edge.
        h.observe(0.5);
        // Between edges.
        h.observe(3.0);
        // Above the highest edge → +Inf only.
        h.observe(100.0);
        assert_eq!(h.cumulative_buckets(), vec![1, 2, 3]);
        assert_eq!(h.count(), 4);
        assert!((h.sum() - 105.5).abs() < 1e-12);
    }

    #[test]
    fn exponential_bucket_grid() {
        assert_eq!(exponential_buckets(1.0, 2.0, 4), vec![1.0, 2.0, 4.0, 8.0]);
        assert_eq!(default_latency_buckets().len(), 11);
    }

    #[test]
    fn concurrent_counters_are_exact() {
        let reg = Registry::new();
        let c = reg.counter("hammer_total", "hammered");
        let g = reg.gauge("hammer_gauge", "hammered");
        let h = reg.histogram("hammer_seconds", "hammered", &[0.5]);
        let threads = 8;
        let per_thread = 10_000;
        std::thread::scope(|s| {
            for _ in 0..threads {
                let c = c.clone();
                let g = g.clone();
                let h = h.clone();
                s.spawn(move || {
                    for i in 0..per_thread {
                        c.inc();
                        g.add(1);
                        h.observe(if i % 2 == 0 { 0.25 } else { 1.0 });
                    }
                });
            }
        });
        let total = (threads * per_thread) as u64;
        assert_eq!(c.get(), total);
        assert_eq!(g.get(), total as i64);
        assert_eq!(h.count(), total);
        assert_eq!(h.cumulative_buckets(), vec![total / 2]);
        assert!((h.sum() - (total / 2) as f64 * 1.25).abs() < 1e-6);
    }

    #[test]
    fn prometheus_exposition_golden() {
        let reg = Registry::new();
        let c = reg.counter_with(
            "mpvsim_http_requests_total",
            "HTTP requests handled",
            &[("endpoint", "runs_post"), ("method", "POST")],
        );
        c.add(3);
        reg.counter_with(
            "mpvsim_http_requests_total",
            "HTTP requests handled",
            &[("endpoint", "healthz"), ("method", "GET")],
        )
        .inc();
        let g = reg.gauge("mpvsim_serve_queue_depth", "queued jobs");
        g.set(2);
        let h = reg.histogram("mpvsim_http_request_seconds", "request latency", &[0.001, 0.01]);
        h.observe(0.001);
        h.observe(0.5);
        let expected = "\
# HELP mpvsim_http_request_seconds request latency
# TYPE mpvsim_http_request_seconds histogram
mpvsim_http_request_seconds_bucket{le=\"0.001\"} 1
mpvsim_http_request_seconds_bucket{le=\"0.01\"} 1
mpvsim_http_request_seconds_bucket{le=\"+Inf\"} 2
mpvsim_http_request_seconds_sum 0.501
mpvsim_http_request_seconds_count 2
# HELP mpvsim_http_requests_total HTTP requests handled
# TYPE mpvsim_http_requests_total counter
mpvsim_http_requests_total{endpoint=\"healthz\",method=\"GET\"} 1
mpvsim_http_requests_total{endpoint=\"runs_post\",method=\"POST\"} 3
# HELP mpvsim_serve_queue_depth queued jobs
# TYPE mpvsim_serve_queue_depth gauge
mpvsim_serve_queue_depth 2
";
        assert_eq!(reg.render_prometheus(), expected);
    }

    #[test]
    fn label_and_help_escaping() {
        let reg = Registry::new();
        reg.counter_with("esc_total", "line1\nline2 back\\slash", &[("k", "a\"b\\c\nd")]).inc();
        let text = reg.render_prometheus();
        assert!(text.contains("# HELP esc_total line1\\nline2 back\\\\slash"));
        assert!(text.contains("esc_total{k=\"a\\\"b\\\\c\\nd\"} 1"));
    }

    #[test]
    fn disabled_registry_records_nothing() {
        let reg = Registry::new();
        let c = reg.counter("noop_total", "noop");
        let g = reg.gauge("noop_gauge", "noop");
        let h = reg.histogram("noop_seconds", "noop", &[1.0]);
        reg.set_recording(false);
        assert!(!reg.recording());
        c.inc();
        g.set(5);
        h.observe(0.5);
        reg.set_recording(true);
        assert_eq!(c.get(), 0);
        assert_eq!(g.get(), 0);
        assert_eq!(h.count(), 0);
        c.inc();
        assert_eq!(c.get(), 1);
    }

    #[test]
    fn histogram_sum_is_exact_on_boundary_values() {
        let reg = Registry::new();
        let h = reg.histogram("edge_seconds", "edges", &[0.0001, 0.01, 1.0]);
        h.observe(0.0001); // exactly the lowest bound
        h.observe(1.0); // exactly the highest bound
        h.observe(1.0000001); // just above → +Inf
        assert_eq!(h.cumulative_buckets(), vec![1, 1, 2]);
        assert_eq!(h.count(), 3);
    }
}
