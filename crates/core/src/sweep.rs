//! The sweep orchestrator: declarative grids of scenario cells, executed
//! by a work-stealing pool over a shared [`TopologyCache`], streaming
//! into a structured on-disk results store that doubles as a checkpoint.
//!
//! ## Model
//!
//! A [`SweepSpec`] is pure data: a name, a seed block (`reps` ×
//! `master_seed`), and an ordered list of [`SweepCell`]s, each a complete
//! [`ScenarioSpec`] under a stable id. [`run_sweep`] executes the spec
//! into a directory:
//!
//! ```text
//! <dir>/manifest.json        versioned, timestamp-free copy of the spec
//! <dir>/cells/<id>.jsonl     one series file per cell: header line,
//!                            one line per replication, aggregate line
//! ```
//!
//! Cell files are written to a temporary name and atomically renamed on
//! completion, so a file's *existence* certifies a finished cell. That
//! makes the store a checkpoint: [`resume_sweep`] (or re-running
//! [`run_sweep`] on the same directory) skips completed cells and —
//! because every replication's outcome is a pure function of
//! `(config, derive_seed(master_seed, rep))` and nothing in the store
//! carries wall-clock state — produces **byte-identical** files to an
//! uninterrupted run.
//!
//! Cells sharing a network (every figure's arms differ only in virus or
//! response knobs) resolve their topology through one shared
//! [`TopologyCache`], so each `(generator params, seed)` graph is built
//! once per process however many cells use it.

use std::fs;
use std::io::{BufWriter, Write as _};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;

use mpvsim_des::seed::derive_seed;
use mpvsim_des::ObserverHandle;
use mpvsim_stats::{AggregateSeries, Summary, TimeSeries};

use crate::config::{ConfigError, ScenarioConfig};
use crate::figures::FigureOptions;
use crate::probe::MechanismTelemetry;
use crate::run::{EngineOptions, ExperimentPlan, TopologyCache, TopologyCacheStats};
use crate::spec::ScenarioSpec;
use crate::studies::StudyId;

/// Manifest schema tag; bump on any incompatible store layout change.
/// `/2` replaced each cell's inline `label` + `config` pair with a full
/// [`ScenarioSpec`] wire document.
pub const SWEEP_SCHEMA: &str = "mpvsim-sweep/2";
/// Cell-file schema tag (the `schema` field of each header line).
pub const CELL_SCHEMA: &str = "mpvsim-sweep-cell/1";

/// Anything that can go wrong launching, resuming or reading a sweep.
#[derive(Debug)]
pub enum SweepError {
    /// Filesystem failure in the results store.
    Io(std::io::Error),
    /// A scenario failed to validate or a replication failed.
    Config(ConfigError),
    /// The store exists but does not match the sweep being launched, or
    /// holds data this version cannot read.
    Store(String),
}

impl std::fmt::Display for SweepError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SweepError::Io(e) => write!(f, "sweep store I/O: {e}"),
            SweepError::Config(e) => write!(f, "sweep cell: {e}"),
            SweepError::Store(msg) => write!(f, "sweep store: {msg}"),
        }
    }
}

impl std::error::Error for SweepError {}

impl From<std::io::Error> for SweepError {
    fn from(e: std::io::Error) -> Self {
        SweepError::Io(e)
    }
}

impl From<ConfigError> for SweepError {
    fn from(e: ConfigError) -> Self {
        SweepError::Config(e)
    }
}

impl From<serde_json::Error> for SweepError {
    fn from(e: serde_json::Error) -> Self {
        SweepError::Store(format!("serialization: {e}"))
    }
}

/// One cell of a sweep: a scenario spec under a stable, unique,
/// filename-safe id.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SweepCell {
    /// Unique filename-safe id; the cell's series file is
    /// `cells/<id>.jsonl`.
    pub id: String,
    /// The complete scenario this cell runs, as the canonical wire
    /// document; its `name` is the cell's human-readable label (the
    /// figure legend entry).
    pub spec: ScenarioSpec,
}

impl SweepCell {
    /// Human-readable label (the figure legend entry).
    pub fn label(&self) -> &str {
        &self.spec.name
    }

    /// The scenario this cell runs, without validation; execution goes
    /// through [`ScenarioSpec::to_config`] instead.
    pub fn config(&self) -> &ScenarioConfig {
        &self.spec.scenario
    }
}

/// A declarative sweep: cells × seed block. Pure data — serializing it
/// *is* the manifest, and equality of manifests is equality of sweeps.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SweepSpec {
    /// Store layout version (see [`SWEEP_SCHEMA`]).
    pub schema: String,
    /// Sweep name (reporting only).
    pub name: String,
    /// Replications per cell.
    pub reps: u64,
    /// Master seed; replication `r` of every cell derives from
    /// `(master_seed, r)`.
    pub master_seed: u64,
    /// The cells, in execution order.
    pub cells: Vec<SweepCell>,
}

impl SweepSpec {
    /// A sweep over explicit cells.
    ///
    /// # Errors
    ///
    /// Returns [`SweepError::Store`] when a cell id is empty, not
    /// filename-safe, or duplicated.
    pub fn new(
        name: impl Into<String>,
        reps: u64,
        master_seed: u64,
        cells: Vec<SweepCell>,
    ) -> Result<Self, SweepError> {
        let mut spec = SweepSpec {
            schema: SWEEP_SCHEMA.to_owned(),
            name: name.into(),
            reps,
            master_seed,
            cells,
        };
        // Normalize: the sweep's seed block is authoritative, and every
        // cell's spec restates it, so each cell is a complete,
        // self-describing `mpvsim-scenario/1` document (and manifest
        // equality — the resume guard — cannot be defeated by a cell
        // disagreeing with its sweep).
        for cell in &mut spec.cells {
            cell.spec.reps = reps;
            cell.spec.master_seed = master_seed;
        }
        spec.validate()?;
        Ok(spec)
    }

    /// The cells of `studies` flattened into one sweep, ids
    /// `"<study>.<index>-<label-slug>"`, with `reps`/`master_seed` taken
    /// from `opts`.
    ///
    /// # Errors
    ///
    /// Returns [`SweepError::Store`] when the generated ids collide
    /// (distinct studies never collide; identical labels within one study
    /// are disambiguated by the index).
    pub fn from_studies(
        name: impl Into<String>,
        studies: &[StudyId],
        opts: &FigureOptions,
    ) -> Result<Self, SweepError> {
        let mut cells = Vec::new();
        for study in studies {
            for (i, cell) in study.cells(opts).into_iter().enumerate() {
                let id = format!("{}.{i:02}-{}", study.name(), slugify(cell.label()));
                cells.push(SweepCell { id, spec: cell.spec });
            }
        }
        SweepSpec::new(name, opts.reps, opts.master_seed, cells)
    }

    fn validate(&self) -> Result<(), SweepError> {
        let mut seen = std::collections::HashSet::new();
        for cell in &self.cells {
            if cell.id.is_empty()
                || !cell.id.chars().all(|c| c.is_ascii_alphanumeric() || "._-".contains(c))
            {
                return Err(SweepError::Store(format!(
                    "cell id {:?} is not filename-safe ([A-Za-z0-9._-]+)",
                    cell.id
                )));
            }
            if !seen.insert(cell.id.as_str()) {
                return Err(SweepError::Store(format!("duplicate cell id {:?}", cell.id)));
            }
        }
        Ok(())
    }
}

/// Lowercases and maps every non-alphanumeric run to a single `-`,
/// producing a filename-safe slug (used for cell ids and trace files).
pub fn slugify(label: &str) -> String {
    let mut out = String::with_capacity(label.len());
    let mut dash_pending = false;
    for c in label.chars() {
        if c.is_ascii_alphanumeric() {
            if dash_pending && !out.is_empty() {
                out.push('-');
            }
            dash_pending = false;
            out.push(c.to_ascii_lowercase());
        } else {
            dash_pending = true;
        }
    }
    out
}

/// Execution knobs of a sweep run. Like threads and observers on an
/// [`ExperimentPlan`], nothing here changes a bit of the simulated
/// trajectories. `probe` adds extra (deterministic) records to the cell
/// files, so resuming a sweep with a different probe than it was started
/// with forfeits byte-identity of the files — never of the results.
#[derive(Debug, Clone)]
pub struct SweepOptions {
    /// Cells executed concurrently (work-stealing pool size).
    pub cell_workers: usize,
    /// Engine knobs for every cell's replication batch (FEL backend,
    /// layout, probe, threads *within* the cell); see [`EngineOptions`].
    /// [`ProbeKind::Telemetry`] adds per-rep and cell-aggregate
    /// telemetry records to the store.
    pub engine: EngineOptions,
    /// Stop after completing this many (previously incomplete) cells —
    /// the in-process stand-in for a kill, used by the resume tests and
    /// the CI smoke job. `None` runs to completion.
    pub max_cells: Option<usize>,
    /// Observer attached to every cell's experiment.
    pub observer: ObserverHandle,
}

impl Default for SweepOptions {
    fn default() -> Self {
        SweepOptions {
            cell_workers: 4,
            engine: EngineOptions::default(),
            max_cells: None,
            observer: ObserverHandle::noop(),
        }
    }
}

/// One completed cell as read back from the store.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct CellResult {
    /// The cell's id in the manifest.
    pub id: String,
    /// The cell's label.
    pub label: String,
    /// Pointwise mean infection curve with a 95 % confidence band.
    pub aggregate: AggregateSeries,
    /// Summary of final infection counts across replications.
    pub final_infected: Summary,
    /// Per-mechanism telemetry summed over the cell's replications
    /// (present when the sweep ran with [`ProbeKind::Telemetry`]).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub telemetry: Option<MechanismTelemetry>,
}

/// What a [`run_sweep`] / [`resume_sweep`] call did.
#[derive(Debug, Clone)]
pub struct SweepReport {
    /// The sweep's spec (as stored in the manifest).
    pub spec: SweepSpec,
    /// Cells executed by *this* call.
    pub executed: usize,
    /// Cells already complete when this call started.
    pub skipped: usize,
    /// Cells still incomplete after this call (> 0 only when
    /// [`SweepOptions::max_cells`] interrupted the run).
    pub remaining: usize,
    /// Every completed cell, loaded back from the store, in manifest
    /// order. Reading from disk (rather than from memory) is what makes
    /// an interrupted-and-resumed sweep report identical to an
    /// uninterrupted one.
    pub cells: Vec<CellResult>,
    /// Topology-cache counters for this call.
    pub cache: TopologyCacheStats,
}

#[derive(serde::Serialize, serde::Deserialize)]
struct HeaderRecord {
    kind: String,
    schema: String,
    cell: String,
    label: String,
    reps: u64,
    master_seed: u64,
}

#[derive(serde::Serialize, serde::Deserialize)]
struct RepRecord {
    kind: String,
    rep: u64,
    seed: u64,
    final_infected: usize,
    series: TimeSeries,
    #[serde(default, skip_serializing_if = "Option::is_none")]
    telemetry: Option<MechanismTelemetry>,
}

#[derive(serde::Serialize, serde::Deserialize)]
struct AggregateRecord {
    kind: String,
    aggregate: AggregateSeries,
    final_infected: Summary,
    #[serde(default, skip_serializing_if = "Option::is_none")]
    telemetry: Option<MechanismTelemetry>,
}

/// The on-disk results store of one sweep: `manifest.json` plus
/// `cells/<id>.jsonl`, all writes atomic (temp file + rename).
#[derive(Debug)]
pub struct ResultsStore {
    dir: PathBuf,
}

impl ResultsStore {
    /// Creates (or re-opens) the store at `dir` for `spec`.
    ///
    /// First launch writes the manifest; a relaunch verifies the existing
    /// manifest describes **the same sweep** and refuses to mix stores
    /// otherwise.
    ///
    /// # Errors
    ///
    /// [`SweepError::Io`] on filesystem failure, [`SweepError::Store`]
    /// when `dir` already holds a different sweep.
    pub fn init(dir: &Path, spec: &SweepSpec) -> Result<Self, SweepError> {
        let store = ResultsStore { dir: dir.to_path_buf() };
        fs::create_dir_all(store.cells_dir())?;
        match store.read_manifest() {
            Ok(existing) => {
                if existing != *spec {
                    return Err(SweepError::Store(format!(
                        "{} already holds a different sweep ({:?}); \
                         refusing to mix results",
                        store.manifest_path().display(),
                        existing.name,
                    )));
                }
            }
            Err(SweepError::Io(e)) if e.kind() == std::io::ErrorKind::NotFound => {
                let bytes = serde_json::to_vec_pretty(spec)?;
                store.write_atomic(&store.manifest_path(), &bytes)?;
            }
            Err(e) => return Err(e),
        }
        Ok(store)
    }

    /// Opens an existing store, returning it with the manifest's spec.
    ///
    /// # Errors
    ///
    /// [`SweepError::Io`] when `dir` has no manifest, [`SweepError::Store`]
    /// when the manifest is unreadable or from an incompatible version.
    pub fn open(dir: &Path) -> Result<(Self, SweepSpec), SweepError> {
        let store = ResultsStore { dir: dir.to_path_buf() };
        let spec = store.read_manifest()?;
        Ok((store, spec))
    }

    fn manifest_path(&self) -> PathBuf {
        self.dir.join("manifest.json")
    }

    fn cells_dir(&self) -> PathBuf {
        self.dir.join("cells")
    }

    /// The series file of cell `id`.
    pub fn cell_path(&self, id: &str) -> PathBuf {
        self.cells_dir().join(format!("{id}.jsonl"))
    }

    fn read_manifest(&self) -> Result<SweepSpec, SweepError> {
        let bytes = fs::read(self.manifest_path())?;
        let spec: SweepSpec = serde_json::from_slice(&bytes)
            .map_err(|e| SweepError::Store(format!("unreadable manifest: {e}")))?;
        if spec.schema != SWEEP_SCHEMA {
            return Err(SweepError::Store(format!(
                "manifest schema {:?} (this version reads {SWEEP_SCHEMA:?})",
                spec.schema
            )));
        }
        Ok(spec)
    }

    /// Whether cell `id` has a completed (renamed-into-place) series file.
    pub fn is_complete(&self, id: &str) -> bool {
        self.cell_path(id).is_file()
    }

    /// Writes `bytes` to `path` atomically: temp file in the same
    /// directory, then rename.
    fn write_atomic(&self, path: &Path, bytes: &[u8]) -> Result<(), SweepError> {
        let tmp = path.with_extension("tmp");
        fs::write(&tmp, bytes)?;
        fs::rename(&tmp, path)?;
        Ok(())
    }

    /// Runs one cell's replication batch, streaming every replication to
    /// the cell's temp file and renaming it into place on success.
    fn execute_cell(
        &self,
        spec: &SweepSpec,
        cell: &SweepCell,
        opts: &SweepOptions,
        cache: &std::sync::Arc<TopologyCache>,
    ) -> Result<(), SweepError> {
        let final_path = self.cell_path(&cell.id);
        let tmp = final_path.with_extension("tmp");
        let result = self.stream_cell(spec, cell, opts, cache, &tmp);
        match result {
            Ok(()) => {
                fs::rename(&tmp, &final_path)?;
                Ok(())
            }
            Err(e) => {
                let _ = fs::remove_file(&tmp);
                Err(e)
            }
        }
    }

    fn stream_cell(
        &self,
        spec: &SweepSpec,
        cell: &SweepCell,
        opts: &SweepOptions,
        cache: &std::sync::Arc<TopologyCache>,
        tmp: &Path,
    ) -> Result<(), SweepError> {
        // The validation funnel: the only route from a stored spec to the
        // engine.
        let config = cell.spec.to_config()?;
        let mut w = BufWriter::new(fs::File::create(tmp)?);
        let header = HeaderRecord {
            kind: "header".to_owned(),
            schema: CELL_SCHEMA.to_owned(),
            cell: cell.id.clone(),
            label: cell.label().to_owned(),
            reps: spec.reps,
            master_seed: spec.master_seed,
        };
        serde_json::to_writer(&mut w, &header)?;
        w.write_all(b"\n")?;

        let plan = ExperimentPlan::new(spec.reps)
            .master_seed(spec.master_seed)
            .engine(EngineOptions { threads: opts.engine.threads.max(1), ..opts.engine })
            .retain_runs(false)
            .observer_handle(opts.observer.clone())
            .topology_cache(cache.clone());

        // The sink cannot return errors; park the first one and fail the
        // cell afterwards.
        let mut sink_err: Option<SweepError> = None;
        let mut merged_telemetry: Option<MechanismTelemetry> = None;
        let result = plan.run_with_sink(config, |rep, run| {
            if sink_err.is_some() {
                return;
            }
            let telemetry = run.telemetry().cloned();
            if let Some(t) = &telemetry {
                match merged_telemetry.as_mut() {
                    Some(m) => m.merge(t),
                    None => merged_telemetry = Some(t.clone()),
                }
            }
            let record = RepRecord {
                kind: "rep".to_owned(),
                rep,
                seed: derive_seed(spec.master_seed, rep),
                final_infected: run.final_infected,
                series: run.series.clone(),
                telemetry,
            };
            let write = serde_json::to_writer(&mut w, &record)
                .map_err(SweepError::from)
                .and_then(|()| w.write_all(b"\n").map_err(SweepError::from));
            if let Err(e) = write {
                sink_err = Some(e);
            }
        })?;
        if let Some(e) = sink_err {
            return Err(e);
        }

        let tail = AggregateRecord {
            kind: "aggregate".to_owned(),
            aggregate: result.aggregate,
            final_infected: result.final_infected,
            telemetry: merged_telemetry,
        };
        serde_json::to_writer(&mut w, &tail)?;
        w.write_all(b"\n")?;
        w.flush()?;
        Ok(())
    }

    /// Loads a completed cell's aggregate back from its series file.
    ///
    /// # Errors
    ///
    /// [`SweepError::Io`] when the cell has no completed file,
    /// [`SweepError::Store`] when the file is malformed.
    pub fn load_cell(&self, cell: &SweepCell) -> Result<CellResult, SweepError> {
        let path = self.cell_path(&cell.id);
        let text = fs::read_to_string(&path)?;
        let last = text
            .lines()
            .rev()
            .find(|l| !l.trim().is_empty())
            .ok_or_else(|| SweepError::Store(format!("{}: empty cell file", path.display())))?;
        let tail: AggregateRecord = serde_json::from_str(last).map_err(|e| {
            SweepError::Store(format!("{}: unreadable aggregate line: {e}", path.display()))
        })?;
        if tail.kind != "aggregate" {
            return Err(SweepError::Store(format!(
                "{}: last line is {:?}, not an aggregate (file truncated?)",
                path.display(),
                tail.kind
            )));
        }
        Ok(CellResult {
            id: cell.id.clone(),
            label: cell.label().to_owned(),
            aggregate: tail.aggregate,
            final_infected: tail.final_infected,
            telemetry: tail.telemetry,
        })
    }
}

/// Launches (or re-launches) `spec` into the store at `dir`.
///
/// Completed cells are skipped; incomplete cells are executed by a
/// work-stealing pool of [`SweepOptions::cell_workers`] threads sharing
/// one [`TopologyCache`]. Because a cell file only appears via atomic
/// rename after its last byte is written, a killed run leaves either a
/// complete cell or no cell — never a torn one — and re-launching
/// produces byte-identical files to an uninterrupted run.
///
/// # Errors
///
/// [`SweepError::Store`] when `dir` holds a different sweep,
/// [`SweepError::Config`] when a cell's scenario is invalid or a
/// replication fails (lowest-indexed failing cell wins, at every worker
/// count), [`SweepError::Io`] on filesystem failure.
pub fn run_sweep(
    spec: &SweepSpec,
    dir: &Path,
    opts: &SweepOptions,
) -> Result<SweepReport, SweepError> {
    spec.validate()?;
    let store = ResultsStore::init(dir, spec)?;
    execute(&store, spec, opts)
}

/// Re-opens the store at `dir` and finishes its sweep (skipping
/// completed cells). Equivalent to [`run_sweep`] with the manifest's own
/// spec.
///
/// # Errors
///
/// Same contract as [`run_sweep`]; additionally [`SweepError::Io`] when
/// `dir` has no manifest.
pub fn resume_sweep(dir: &Path, opts: &SweepOptions) -> Result<SweepReport, SweepError> {
    let (store, spec) = ResultsStore::open(dir)?;
    execute(&store, &spec, opts)
}

/// Log target and registry handles of the sweep orchestrator.
const LOG_TARGET: &str = "mpvsim_core::sweep";

/// `(executed, resumed)` counters: cells freshly simulated vs skipped
/// because a previous (interrupted) launch already completed them.
fn sweep_metrics() -> &'static (mpvsim_obs::Counter, mpvsim_obs::Counter) {
    static METRICS: std::sync::OnceLock<(mpvsim_obs::Counter, mpvsim_obs::Counter)> =
        std::sync::OnceLock::new();
    METRICS.get_or_init(|| {
        let reg = mpvsim_obs::metrics::global();
        let help = "Sweep cells by outcome: executed fresh, or resumed from a prior launch";
        (
            reg.counter_with("mpvsim_sweep_cells_total", help, &[("result", "executed")]),
            reg.counter_with("mpvsim_sweep_cells_total", help, &[("result", "resumed")]),
        )
    })
}

fn execute(
    store: &ResultsStore,
    spec: &SweepSpec,
    opts: &SweepOptions,
) -> Result<SweepReport, SweepError> {
    let mut pending: Vec<usize> =
        (0..spec.cells.len()).filter(|&i| !store.is_complete(&spec.cells[i].id)).collect();
    let skipped = spec.cells.len() - pending.len();
    let mut deferred = 0;
    if let Some(max) = opts.max_cells {
        deferred = pending.len().saturating_sub(max);
        pending.truncate(max);
    }
    let span = mpvsim_obs::Span::start(LOG_TARGET, "sweep")
        .level(mpvsim_obs::Level::Info)
        .field("name", spec.name.as_str())
        .field("cells", spec.cells.len())
        .field("resumed", skipped)
        .field("deferred", deferred);

    let cache = TopologyCache::shared();
    // Work-stealing over the pending list: workers claim the next index
    // from a shared counter, so slow cells never hold up the rest.
    let claim = AtomicUsize::new(0);
    let failed = AtomicBool::new(false);
    // Lowest-indexed failing cell wins, independent of worker count.
    let first_error: Mutex<Option<(usize, SweepError)>> = Mutex::new(None);
    let workers = opts.cell_workers.max(1).min(pending.len().max(1));

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                if failed.load(Ordering::Relaxed) {
                    return;
                }
                let slot = claim.fetch_add(1, Ordering::Relaxed);
                let Some(&cell_idx) = pending.get(slot) else { return };
                let cell = &spec.cells[cell_idx];
                if let Err(e) = store.execute_cell(spec, cell, opts, &cache) {
                    failed.store(true, Ordering::Relaxed);
                    let mut first = first_error.lock().expect("error slot poisoned");
                    if first.as_ref().is_none_or(|(prev, _)| cell_idx < *prev) {
                        *first = Some((cell_idx, e));
                    }
                }
            });
        }
    });

    if let Some((cell_idx, e)) = first_error.into_inner().expect("error slot poisoned") {
        mpvsim_obs::log::error(
            LOG_TARGET,
            "sweep cell failed",
            &[
                ("name", spec.name.as_str().into()),
                ("cell", spec.cells[cell_idx].id.as_str().into()),
                ("error", e.to_string().into()),
            ],
        );
        return Err(e);
    }

    let metrics = sweep_metrics();
    metrics.0.add(pending.len() as u64);
    metrics.1.add(skipped as u64);

    let mut cells = Vec::new();
    for cell in &spec.cells {
        if store.is_complete(&cell.id) {
            cells.push(store.load_cell(cell)?);
        }
    }
    let stats = cache.stats();
    span.field("executed", pending.len())
        .field("topo_cache_hits", stats.hits)
        .field("topo_cache_misses", stats.misses)
        .finish();
    Ok(SweepReport {
        spec: spec.clone(),
        executed: pending.len(),
        skipped,
        remaining: deferred,
        cells,
        cache: stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PopulationConfig;
    use crate::virus::VirusProfile;
    use mpvsim_des::{DelaySpec, SimDuration};
    use mpvsim_topology::GraphSpec;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("mpvsim-sweep-unit-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn tiny_cell(id: &str, seed_virus: VirusProfile) -> SweepCell {
        let mut c = ScenarioConfig::baseline(seed_virus);
        c.population = PopulationConfig {
            topology: GraphSpec::erdos_renyi(40, 6.0),
            vulnerable_fraction: 0.8,
        };
        c.behavior.read_delay = DelaySpec::constant(SimDuration::from_mins(5));
        c.horizon = SimDuration::from_hours(4);
        SweepCell { id: id.to_owned(), spec: ScenarioSpec::new(id, c) }
    }

    #[test]
    fn slugify_is_filename_safe() {
        assert_eq!(slugify("30-Minute Wait"), "30-minute-wait");
        assert_eq!(slugify("Virus 1 | baseline"), "virus-1-baseline");
        assert_eq!(slugify("0.95 Accuracy"), "0-95-accuracy");
        assert_eq!(slugify("  weird  "), "weird");
    }

    #[test]
    fn spec_rejects_duplicate_and_unsafe_ids() {
        let a = tiny_cell("a", VirusProfile::virus3());
        let dup = SweepSpec::new("s", 1, 1, vec![a.clone(), a.clone()]);
        assert!(matches!(dup, Err(SweepError::Store(_))));
        let mut bad = a.clone();
        bad.id = "not/safe".to_owned();
        assert!(matches!(SweepSpec::new("s", 1, 1, vec![bad]), Err(SweepError::Store(_))));
        assert!(SweepSpec::new("s", 1, 1, vec![a]).is_ok());
    }

    #[test]
    fn from_studies_ids_are_unique_and_stable() {
        let opts = FigureOptions { population: 40, reps: 2, ..FigureOptions::default() };
        let spec =
            SweepSpec::from_studies("all", &StudyId::all(), &opts).expect("ids must not collide");
        assert!(spec.cells.len() > 50, "16 studies make many cells");
        assert_eq!(spec.reps, 2);
        assert!(spec.cells.iter().any(|c| c.id == "fig1_baseline.00-virus-1"));
        assert!(spec.cells.iter().any(|c| c.id.starts_with("matrix.")));
    }

    #[test]
    fn store_rejects_a_different_sweep() {
        let dir = tmp_dir("mismatch");
        let spec_a =
            SweepSpec::new("a", 1, 7, vec![tiny_cell("x", VirusProfile::virus3())]).unwrap();
        let spec_b =
            SweepSpec::new("b", 2, 8, vec![tiny_cell("y", VirusProfile::virus3())]).unwrap();
        ResultsStore::init(&dir, &spec_a).unwrap();
        let err = ResultsStore::init(&dir, &spec_b).unwrap_err();
        assert!(matches!(err, SweepError::Store(_)), "got {err}");
        // Same spec re-opens fine.
        ResultsStore::init(&dir, &spec_a).unwrap();
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn run_skips_completed_cells_and_loads_them_back() {
        let dir = tmp_dir("skip");
        let spec = SweepSpec::new(
            "two",
            2,
            11,
            vec![tiny_cell("c0", VirusProfile::virus3()), tiny_cell("c1", VirusProfile::virus1())],
        )
        .unwrap();
        let opts = SweepOptions { cell_workers: 2, ..SweepOptions::default() };
        let first = run_sweep(&spec, &dir, &opts).unwrap();
        assert_eq!((first.executed, first.skipped, first.remaining), (2, 0, 0));
        assert_eq!(first.cells.len(), 2);
        let again = run_sweep(&spec, &dir, &opts).unwrap();
        assert_eq!((again.executed, again.skipped, again.remaining), (0, 2, 0));
        assert_eq!(again.cells, first.cells, "reloaded results must match");
        assert_eq!(again.cache.misses, 0, "nothing ran, nothing generated");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn max_cells_interrupts_and_reports_remaining() {
        let dir = tmp_dir("interrupt");
        let spec = SweepSpec::new(
            "three",
            1,
            5,
            vec![
                tiny_cell("c0", VirusProfile::virus3()),
                tiny_cell("c1", VirusProfile::virus1()),
                tiny_cell("c2", VirusProfile::virus2()),
            ],
        )
        .unwrap();
        let interrupted = run_sweep(
            &spec,
            &dir,
            &SweepOptions { max_cells: Some(1), cell_workers: 1, ..SweepOptions::default() },
        )
        .unwrap();
        assert_eq!((interrupted.executed, interrupted.skipped, interrupted.remaining), (1, 0, 2));
        assert_eq!(interrupted.cells.len(), 1);
        let finished = resume_sweep(&dir, &SweepOptions::default()).unwrap();
        assert_eq!((finished.executed, finished.skipped, finished.remaining), (2, 1, 0));
        assert_eq!(finished.cells.len(), 3);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn failing_cell_reports_lowest_index_and_leaves_no_torn_files() {
        let dir = tmp_dir("fail");
        let mut bad0 = tiny_cell("a-bad", VirusProfile::virus3());
        bad0.spec.scenario.initial_infections = 0; // invalid
        let mut bad1 = tiny_cell("z-bad", VirusProfile::virus3());
        bad1.spec.scenario.initial_infections = 0;
        let spec = SweepSpec::new(
            "failing",
            1,
            3,
            vec![bad0, tiny_cell("ok", VirusProfile::virus3()), bad1],
        )
        .unwrap();
        for workers in [1, 3] {
            let _ = fs::remove_dir_all(&dir);
            let err = run_sweep(
                &spec,
                &dir,
                &SweepOptions { cell_workers: workers, ..SweepOptions::default() },
            )
            .unwrap_err();
            let SweepError::Config(e) = err else { panic!("expected config error, got {err}") };
            assert!(e.to_string().contains("initial"), "lowest-index cell's error, got: {e}");
            assert_eq!(e.field(), Some("initial_infections"), "structured field name");
        }
        // No .tmp litter in the cells directory.
        for entry in fs::read_dir(dir.join("cells")).unwrap() {
            let name = entry.unwrap().file_name();
            assert!(
                !name.to_string_lossy().ends_with(".tmp"),
                "torn temp file left behind: {name:?}"
            );
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn telemetry_probe_flows_into_cell_results() {
        let dir = tmp_dir("telemetry");
        let spec =
            SweepSpec::new("probed", 2, 17, vec![tiny_cell("t0", VirusProfile::virus3())]).unwrap();
        let opts = SweepOptions {
            engine: EngineOptions::new().with_probe(crate::probe::ProbeKind::Telemetry),
            ..Default::default()
        };
        let report = run_sweep(&spec, &dir, &opts).unwrap();
        let telemetry = report.cells[0].telemetry.as_ref().expect("telemetry recorded");
        let totals = telemetry.totals();
        assert!(totals.infections > 0, "virus 3 infects phones in 4 h");
        assert!(totals.messages_sent > 0);
        // Per-rep telemetry lines are in the store too.
        let text = fs::read_to_string(dir.join("cells/t0.jsonl")).unwrap();
        assert_eq!(text.matches("\"telemetry\"").count(), 3, "2 rep lines + aggregate");
        // An un-probed sweep stays telemetry-free (and its records omit
        // the field entirely, keeping old readers happy).
        let dir2 = tmp_dir("telemetry-off");
        let plain = run_sweep(&spec, &dir2, &SweepOptions::default()).unwrap();
        assert!(plain.cells[0].telemetry.is_none());
        let _ = fs::remove_dir_all(&dir);
        let _ = fs::remove_dir_all(&dir2);
    }

    #[test]
    fn shared_network_cells_hit_the_cache() {
        let dir = tmp_dir("cache");
        // Three cells, same population spec ⇒ same (spec, seed) networks.
        let mut c1 = tiny_cell("base", VirusProfile::virus3());
        let mut c2 = tiny_cell("edu", VirusProfile::virus3());
        c2.spec.scenario.response = crate::response::ResponseConfig::none()
            .with_education(crate::response::UserEducation { acceptance_scale: 0.5 });
        let mut c3 = tiny_cell("bl", VirusProfile::virus3());
        c3.spec.scenario.response = crate::response::ResponseConfig::none()
            .with_blacklist(crate::response::Blacklist { threshold: 10 });
        c1.spec.name = "baseline".to_owned();
        c2.spec.name = "education".to_owned();
        c3.spec.name = "blacklist".to_owned();
        let spec = SweepSpec::new("cached", 2, 13, vec![c1, c2, c3]).unwrap();
        let report = run_sweep(&spec, &dir, &SweepOptions::default()).unwrap();
        // 2 seeds × 1 spec = 2 distinct networks; 3 cells × 2 reps = 6 lookups.
        assert_eq!(report.cache.misses, 2, "one generation per (spec, seed)");
        assert_eq!(report.cache.hits, 4);
        let _ = fs::remove_dir_all(&dir);
    }
}
