//! Property-based integration tests: model invariants that must hold for
//! *any* valid scenario, not just the paper's four viruses.
//!
//! Each case draws a random (but valid) virus/response/population
//! combination, runs one replication, and checks structural invariants
//! of the result. Small populations and short horizons keep each case
//! fast; proptest explores the configuration space.

use proptest::prelude::*;

use mpvsim::prelude::*;

/// Strategy for a random but valid virus profile.
fn virus_strategy() -> impl Strategy<Value = VirusProfile> {
    (
        1u32..5,                                            // recipients per message
        1u64..60,                                           // min gap minutes
        prop_oneof![Just(None), (1u32..20).prop_map(Some)], // per-day quota
        any::<bool>(),                                      // contact list vs random dialing
        0.0f64..=1.0,                                       // valid fraction (dialing only)
        0u64..3,                                            // dormancy hours
        any::<bool>(),                                      // global day bursts
    )
        .prop_map(|(recipients, gap, per_day, dial, valid, dormancy, bursts)| {
            let targeting = if dial {
                TargetingStrategy::RandomDialing { valid_fraction: valid }
            } else {
                TargetingStrategy::ContactList
            };
            VirusProfile {
                name: "prop-virus".to_owned(),
                targeting,
                send_gap: DelaySpec::shifted_exp(
                    SimDuration::from_mins(gap),
                    SimDuration::from_mins(gap / 2 + 1),
                ),
                recipients_per_message: if dial { 1 } else { recipients },
                quota: match per_day {
                    Some(n) => SendQuota::per_day(n),
                    None => SendQuota::unlimited(),
                },
                dormancy: SimDuration::from_hours(dormancy),
                global_day_bursts: bursts,
                mms_vector: true,
                bluetooth: None,
                piggyback: false,
            }
        })
}

/// Strategy for a random (possibly empty) response configuration.
fn response_strategy() -> impl Strategy<Value = ResponseConfig> {
    (
        prop_oneof![Just(None), (1u64..24).prop_map(Some)], // scan delay h
        prop_oneof![Just(None), (0.5f64..1.0).prop_map(Some)], // detection accuracy
        prop_oneof![Just(None), (0.0f64..1.0).prop_map(Some)], // education scale
        prop_oneof![Just(None), ((1u64..24), (0u64..12)).prop_map(Some)], // immunization
        prop_oneof![Just(None), (5u64..60).prop_map(Some)], // monitoring wait min
        prop_oneof![Just(None), (1u32..40).prop_map(Some)], // blacklist threshold
    )
        .prop_map(|(scan, detect, edu, imm, mon, bl)| {
            let mut r = ResponseConfig::none();
            if let Some(h) = scan {
                r = r.with_signature_scan(SignatureScan {
                    activation_delay: SimDuration::from_hours(h),
                });
            }
            if let Some(a) = detect {
                r = r.with_detection(DetectionAlgorithm::with_accuracy(a));
            }
            if let Some(s) = edu {
                r = r.with_education(UserEducation { acceptance_scale: s });
            }
            if let Some((dev, roll)) = imm {
                r = r.with_immunization(Immunization::uniform(
                    SimDuration::from_hours(dev),
                    SimDuration::from_hours(roll),
                ));
            }
            if let Some(w) = mon {
                r = r.with_monitoring(Monitoring::with_forced_wait(SimDuration::from_mins(w)));
            }
            if let Some(t) = bl {
                r = r.with_blacklist(Blacklist { threshold: t });
            }
            r
        })
}

/// Picks a contact topology from every generator family, with parameters
/// clamped so the spec always validates for `n` nodes.
fn make_topology(n: usize, degree: u64, pick: usize, beta: f64) -> GraphSpec {
    let mean = degree.min(n as u64 - 1) as f64;
    // Lattice generators need an even per-side neighbour count below n.
    let lattice_k = ((degree as usize).clamp(2, n - 1) & !1).max(2);
    match pick {
        0 => GraphSpec::power_law(n, mean.max(1.0)),
        1 => GraphSpec::watts_strogatz(n, lattice_k, beta),
        2 => GraphSpec::ring(n, lattice_k),
        3 => GraphSpec::complete(n),
        _ => GraphSpec::erdos_renyi(n, mean),
    }
}

fn scenario_strategy() -> impl Strategy<Value = ScenarioConfig> {
    (
        virus_strategy(),
        response_strategy(),
        // Topology: (n, mean degree, generator family, rewiring beta).
        (20usize..80, 1u64..30, 0usize..5, 0.0f64..=1.0),
        0.0f64..=1.0, // vulnerable fraction
        2u64..36,     // horizon hours
        1u32..4,      // initial infections
        // Extension knobs: legitimate traffic, Bluetooth, finite gateway.
        prop_oneof![Just(None), (1u64..12).prop_map(Some)], // legit mean gap h
        any::<bool>(),                                      // bluetooth vector
        prop_oneof![Just(None), (60u64..3600).prop_map(Some)], // gateway cap/h
    )
        .prop_map(|(virus, response, topo, vulnerable, horizon, seeds, legit, bt, cap)| {
            let (n, degree, pick, beta) = topo;
            let mut c = ScenarioConfig::baseline(virus);
            c.response = response;
            c.population = PopulationConfig {
                topology: make_topology(n, degree, pick, beta),
                vulnerable_fraction: vulnerable,
            };
            c.horizon = SimDuration::from_hours(horizon);
            c.initial_infections = seeds;
            if let Some(h) = legit {
                c.behavior.legitimate_mms =
                    Some(DelaySpec::exponential(SimDuration::from_hours(h)));
            }
            if bt {
                c.virus.bluetooth = Some(BluetoothVector::default_class2());
                c.mobility = Some(MobilityConfig::downtown());
            }
            c.gateway_capacity_per_hour = cap;
            c
        })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// Whatever the configuration, a run satisfies the structural
    /// invariants of the model.
    #[test]
    fn prop_run_invariants(config in scenario_strategy(), seed in 0u64..1_000_000) {
        prop_assume!(config.validate().is_ok());
        let r = run_scenario(&config, seed).expect("validated config runs");
        let n = config.population.size();

        // Infection counts: monotone, bounded by the population.
        let vals = r.series.values();
        prop_assert!(!vals.is_empty());
        prop_assert!(vals.windows(2).all(|w| w[1] >= w[0]), "infections decreased");
        prop_assert!(r.final_infected <= n);
        prop_assert_eq!(*vals.last().unwrap() as usize, r.final_infected);

        // Series grid: one sample per step from t = 0 through the horizon.
        let expected_len = (config.horizon.as_secs() / config.sample_step.as_secs()) as usize + 1;
        prop_assert_eq!(vals.len(), expected_len);

        // Message accounting.
        let s = &r.stats;
        prop_assert!(s.acceptances <= s.reads, "accepted more than was read");
        prop_assert!(s.reads <= s.deliveries, "read more than was delivered");
        prop_assert!(s.invalid_dials <= s.messages_sent);
        let blocked = s.blocked_by_scan + s.blocked_by_detection + s.blocked_by_blacklist;
        prop_assert!(blocked <= s.messages_sent, "blocked more messages than were sent");
        prop_assert!(
            s.blacklisted_phones as usize + s.throttled_phones as usize <= 2 * n,
            "flagged more phones than exist"
        );

        // A virus can only have spread if something was accepted (beyond
        // the seeds) — over MMS or Bluetooth.
        if r.final_infected > config.initial_infections as usize {
            prop_assert!(
                s.acceptances + s.bluetooth_acceptances > 0,
                "infections without acceptances"
            );
        }
        prop_assert!(s.bluetooth_acceptances <= s.bluetooth_offers);
        prop_assert!(s.false_positive_throttles <= s.throttled_phones);

        // The transit queue exists exactly when finite capacity was
        // configured; with at least one delivery its peak delay includes
        // the (≥ 1 s) service time.
        prop_assert_eq!(
            r.gateway_peak_delay.is_some(),
            config.gateway_capacity_per_hour.is_some()
        );
        if let Some(peak) = r.gateway_peak_delay {
            if s.deliveries > 0 {
                prop_assert!(peak >= SimDuration::from_secs(1));
            }
        }

        // Determinism: a second run is identical.
        let again = run_scenario(&config, seed).expect("still valid");
        prop_assert_eq!(r.series, again.series);
        prop_assert_eq!(r.stats, again.stats);
    }

    /// Education with scale 0 always pins the epidemic at the seeds.
    #[test]
    fn prop_zero_acceptance_never_spreads(config in scenario_strategy(), seed in 0u64..100_000) {
        let mut config = config;
        config.response.education = Some(UserEducation { acceptance_scale: 0.0 });
        prop_assume!(config.validate().is_ok());
        let r = run_scenario(&config, seed).expect("valid");
        prop_assert!(
            r.final_infected <= config.initial_infections as usize,
            "spread happened with zero acceptance: {}",
            r.final_infected
        );
        prop_assert_eq!(r.stats.acceptances, 0);
    }

    /// Adding a signature scan never *increases* the final infection
    /// count relative to the same scenario without it (same seed).
    #[test]
    fn prop_scan_never_hurts(config in scenario_strategy(), seed in 0u64..100_000) {
        let mut base = config;
        base.response.signature_scan = None;
        prop_assume!(base.validate().is_ok());
        let mut scanned = base.clone();
        scanned.detect_threshold = 1;
        scanned.response.signature_scan =
            Some(SignatureScan { activation_delay: SimDuration::ZERO });

        let without = run_scenario(&base, seed).expect("valid");
        let with = run_scenario(&scanned, seed).expect("valid");
        // An immediate perfect scan blocks every delivery after the first
        // message, so spread is limited to what the seeds' first messages
        // caused — never more than the unscanned run... except that RNG
        // stream divergence can flip individual acceptance draws. Compare
        // against a robust bound instead: the scanned run can deliver at
        // most one message per sender.
        prop_assert!(
            with.stats.deliveries <= without.stats.deliveries
                || with.stats.blocked_by_scan > 0,
            "scan neither reduced deliveries nor blocked anything"
        );
    }

    /// The instrumented invariant checker (a mirror state machine fed by a
    /// read-only probe, cross-checked against an uninstrumented re-run)
    /// finds no violations on any valid scenario, under either FEL.
    #[test]
    fn prop_invariant_checker_is_clean(
        config in scenario_strategy(),
        seed in 0u64..1_000_000,
        calendar in any::<bool>(),
    ) {
        prop_assume!(config.validate().is_ok());
        let fel = if calendar { FelKind::Calendar } else { FelKind::BinaryHeap };
        let report = check_invariants(&config, seed, fel).expect("validated config runs");
        prop_assert!(
            report.violations.is_empty(),
            "invariant violations (seed {}, {:?}): {:#?}",
            seed,
            fel,
            report.violations
        );
        prop_assert_eq!(report.final_infected, run_scenario(&config, seed).unwrap().final_infected);
    }

    /// Fuzzer-generated configurations are always valid and deterministic
    /// functions of their (family, case) coordinates.
    #[test]
    fn prop_fuzz_cases_valid_and_reproducible(family in 0u64..10_000, case in 0u64..64) {
        let config = fuzz_case(family, case);
        prop_assert!(config.validate().is_ok(), "fuzz_case produced an invalid config");
        prop_assert_eq!(format!("{config:?}"), format!("{:?}", fuzz_case(family, case)));
    }
}
