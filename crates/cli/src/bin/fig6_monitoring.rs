//! Regenerates Figure 6: monitoring with forced waits (Virus 3).
fn main() {
    mpvsim_cli::figure_main(
        "Figure 6 — Monitoring: Varying the Wait Time for Suspicious Phones (Virus 3)",
        mpvsim_core::figures::fig6_monitoring,
    );
}
