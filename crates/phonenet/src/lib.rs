//! # mpvsim-phonenet — the mobile-phone network substrate
//!
//! Domain structures for the DSN 2007 mobile-phone-virus model, kept free
//! of epidemic dynamics (which live in `mpvsim-core`):
//!
//! * [`Population`] — the paper's "phone submodels" in struct-of-arrays
//!   form: identity, vulnerability, health state, contact list, and the
//!   count of infected messages received (which drives the declining
//!   acceptance probability). Per-phone access goes through the
//!   [`PhoneRef`] / [`PhoneMut`] views;
//! * [`MmsMessage`] — an MMS with sender, recipients and infection flag;
//! * [`AddressSpace`] — random dialing with a configurable fraction of
//!   valid numbers (the paper's "one third of the possible phone numbers
//!   with the mobile phone prefix are valid");
//! * [`gateway`] — the service-provider's bookkeeping: per-phone outgoing
//!   counters over a sliding window (monitoring), cumulative
//!   suspected-infected counters (blacklisting), and the total of infected
//!   messages observed (the "virus reaches a detectable level" clock);
//! * [`BufferPool`] — replication-scoped recycling of the flat state
//!   arrays behind populations, inboxes and gateways.
//!
//! ```rust
//! use mpvsim_phonenet::{Population, PhoneId};
//! use mpvsim_topology::GraphSpec;
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(3);
//! let graph = GraphSpec::power_law(100, 10.0).generate(&mut rng)?;
//! let pop = Population::from_graph(&graph, 0.8, &mut rng);
//! assert_eq!(pop.len(), 100);
//! let v = pop.vulnerable_count();
//! assert!((60..=95).contains(&v), "≈80% vulnerable, got {v}");
//! # Ok::<(), mpvsim_topology::TopologyError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod address;
pub mod arena;
pub mod gateway;
pub mod inbox;
pub mod message;
pub mod partition;
pub mod phone;
pub mod population;
pub mod queue;

pub use address::AddressSpace;
pub use arena::BufferPool;
pub use gateway::Gateway;
pub use inbox::Inboxes;
pub use message::MmsMessage;
pub use partition::Partition;
pub use phone::{Health, PhoneId, PhoneMut, PhoneRef};
pub use population::Population;
pub use queue::TransitQueue;
