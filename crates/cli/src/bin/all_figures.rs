//! Deprecated shim: forwards to `mpvsim all`.
fn main() {
    mpvsim_cli::commands::deprecated_shim("all_figures");
}
