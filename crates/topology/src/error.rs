//! Error type for invalid generator configurations.

use std::error::Error;
use std::fmt;

/// Returned when a [`crate::GraphSpec`] cannot produce a graph.
#[derive(Debug, Clone, PartialEq)]
pub enum TopologyError {
    /// The requested node count is zero.
    EmptyPopulation,
    /// The target mean degree is not achievable for the node count (e.g.
    /// `mean_degree >= n` or negative/non-finite).
    InvalidMeanDegree {
        /// Node count requested.
        n: usize,
        /// Mean degree requested (stored as the raw parameter).
        mean_degree: f64,
    },
    /// A probability parameter was outside `[0, 1]`.
    InvalidProbability {
        /// The offending value.
        value: f64,
        /// Which parameter it was.
        name: &'static str,
    },
    /// A structural parameter was out of range (e.g. Watts–Strogatz `k`
    /// larger than `n - 1` or odd).
    InvalidParameter(String),
}

impl fmt::Display for TopologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopologyError::EmptyPopulation => write!(f, "graph must have at least one node"),
            TopologyError::InvalidMeanDegree { n, mean_degree } => {
                write!(f, "mean degree {mean_degree} is not achievable with {n} nodes")
            }
            TopologyError::InvalidProbability { value, name } => {
                write!(f, "{name} = {value} is not a probability in [0, 1]")
            }
            TopologyError::InvalidParameter(msg) => write!(f, "invalid parameter: {msg}"),
        }
    }
}

impl Error for TopologyError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = TopologyError::InvalidMeanDegree { n: 10, mean_degree: 50.0 };
        assert!(e.to_string().contains("50"));
        assert!(e.to_string().contains("10"));
        let e = TopologyError::InvalidProbability { value: 1.5, name: "beta" };
        assert!(e.to_string().contains("beta"));
        assert!(!TopologyError::EmptyPopulation.to_string().is_empty());
        assert!(TopologyError::InvalidParameter("k odd".into()).to_string().contains("k odd"));
    }

    #[test]
    fn implements_std_error() {
        fn takes_err<E: std::error::Error + Send + Sync + 'static>(_: E) {}
        takes_err(TopologyError::EmptyPopulation);
    }
}
