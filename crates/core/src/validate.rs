//! The validation subsystem: golden-trajectory regression store,
//! differential oracle, and simulation fuzzer.
//!
//! The paper's claims are statistical — infection-count-vs-time curves
//! per virus × mechanism — so the reproduction's credibility rests on
//! two properties this module pins down in committed, re-checkable
//! artefacts:
//!
//! 1. **Determinism.** Every study's trajectory is a pure function of
//!    `(config, master_seed)`: FEL backend, thread count and attached
//!    probes must never move a single bit. The *golden store*
//!    ([`bless_study`] / [`check_study`]) commits a compact fingerprint
//!    per study cell — an FNV-1a hash over the full per-replication
//!    trajectory byte-stream plus a downsampled mean curve — and the
//!    checker re-runs each study under single-knob variants (calendar
//!    FEL, multi-threaded, no-op probe) asserting bit-identity against
//!    the blessed fingerprint.
//!
//! 2. **Distributional correctness.** The *differential oracle*
//!    ([`check_oracle`]) runs the DES at small scale against the
//!    mean-field ODE of [`crate::meanfield`] and asserts
//!    tolerance-banded agreement (final infection level, time to half
//!    peak), plus statistical acceptance checks on an independent
//!    seed family: the replication CI must contain the golden mean and
//!    the two-sample Kolmogorov–Smirnov distance between final-count
//!    samples must stay under the α = 0.01 critical value.
//!
//! A third leg, the *simulation fuzzer* ([`fuzz_cases`] and
//! [`check_invariants`]), generates random valid scenario
//! configurations and checks structural invariants that no valid run
//! may violate: state conservation mirrored through a read-only
//! [`SimProbe`], monotone cumulative infections, no delivery from a
//! blacklisted sender, and event-count determinism under re-run. The
//! proptest suite in `tests/invariants.rs` drives the same checker from
//! randomly drawn configurations; `mpvsim validate fuzz` drives it from
//! a deterministic seed so CI failures replay exactly.

use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};

use mpvsim_des::seed::derive_seed;
use mpvsim_des::{DelaySpec, FelKind, Fnv1a64, ObserverHandle, SimDuration, SimTime};
use mpvsim_stats::{ci95_contains, ks_critical_value, ks_distance, RunningSummary};
use mpvsim_topology::GraphSpec;

use crate::config::{ConfigError, MobilityConfig, PopulationConfig, ScenarioConfig};
use crate::figures::FigureOptions;
use crate::meanfield::{self, MeanFieldParams};
use crate::probe::{BlockCause, InfectionCause, Milestone, ProbeKind, SimProbe};
use crate::response::{
    Blacklist, DetectionAlgorithm, Immunization, Monitoring, ResponseConfig, SignatureScan,
    UserEducation,
};
use crate::run::{
    run_scenario_probed_with, run_scenario_with_metrics_fel, EngineOptions, ExperimentPlan,
    LayoutKind, RunResult,
};
use crate::spec::ScenarioSpec;
use crate::studies::StudyId;
use crate::sweep::slugify;
use crate::virus::{BluetoothVector, SendQuota, TargetingStrategy, VirusProfile};

/// Maximum points retained in a golden file's downsampled mean curve.
const MAX_CURVE_POINTS: usize = 25;

/// File name of the differential-oracle golden inside a golden
/// directory.
pub const ORACLE_FILE: &str = "oracle.json";

// ---------------------------------------------------------------------
// Golden-trajectory regression store
// ---------------------------------------------------------------------

/// The (deliberately small) scale golden studies run at. Goldens are a
/// regression fingerprint, not science: a reduced population and two
/// replications already exercise every mechanism code path while
/// keeping `validate check` fast enough for CI.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct GoldenScale {
    /// Population size each study runs at (the scaling study doubles
    /// it internally, exactly as at full scale).
    pub population: usize,
    /// Replications per study cell.
    pub reps: u64,
    /// Master seed of the replication family.
    pub master_seed: u64,
}

impl Default for GoldenScale {
    fn default() -> Self {
        GoldenScale { population: 120, reps: 2, master_seed: 2007 }
    }
}

impl GoldenScale {
    /// The full paper scale ([`FigureOptions::default`]): the scale the
    /// committed scenario-spec goldens describe. Spec blessing is pure
    /// serialization — no simulation runs — so unlike trajectory
    /// goldens there is no reason to shrink it.
    pub fn paper() -> GoldenScale {
        let opts = FigureOptions::default();
        GoldenScale { population: opts.population, reps: opts.reps, master_seed: opts.master_seed }
    }

    /// The figure options this scale describes under `variant`.
    fn options(&self, variant: &Variant) -> FigureOptions {
        FigureOptions {
            reps: self.reps,
            master_seed: self.master_seed,
            population: self.population,
            observer: ObserverHandle::noop(),
            engine: variant.engine,
            topology_cache: None,
        }
    }
}

/// One execution variant a golden check replays a study under. The
/// engine documents all four knobs as bit-transparent; the checker
/// turns that contract into a regression gate.
#[derive(Debug, Clone)]
pub struct Variant {
    /// Human-readable name, used in drift reports.
    pub label: &'static str,
    /// The engine knobs this variant replays under (see
    /// [`EngineOptions`]).
    pub engine: EngineOptions,
}

impl Variant {
    /// The reference execution: binary-heap FEL, single-threaded, no
    /// probe, fresh state arrays. Blessing always uses this variant.
    pub fn reference() -> Variant {
        Variant {
            label: "reference",
            engine: EngineOptions {
                fel: FelKind::BinaryHeap,
                layout: LayoutKind::Fresh,
                probe: ProbeKind::None,
                threads: 1,
                shards: 1,
            },
        }
    }

    /// The standard single-knob check matrix: reference, calendar FEL,
    /// `threads` worker threads, a no-op probe, and the arena buffer
    /// layout. Each variant flips exactly one knob away from the
    /// reference so a drift names its culprit.
    ///
    /// The sixth engine axis — `shards` — is deliberately absent here:
    /// the sharded engine draws from per-phone RNG substreams, so its
    /// trajectories are not comparable to the committed goldens.
    /// [`check_sharded_consistency`] covers that axis by
    /// self-consistency (`shards ∈ {1, N}` of the sharded engine must
    /// agree with each other) and runs alongside this matrix in
    /// `mpvsim validate check`.
    pub fn standard(threads: usize) -> Vec<Variant> {
        let reference = Variant::reference().engine;
        vec![
            Variant::reference(),
            Variant { label: "calendar-fel", engine: reference.with_fel(FelKind::Calendar) },
            Variant { label: "threaded", engine: reference.with_threads(threads.max(2)) },
            Variant { label: "noop-probe", engine: reference.with_probe(ProbeKind::Noop) },
            Variant { label: "arena-layout", engine: reference.with_layout(LayoutKind::Arena) },
        ]
    }
}

/// The sharded-engine leg of the `validate check` variant matrix: for a
/// fixed panel of paper scenarios (all four viruses under the full
/// response stack, made shardable via [`shardable`]), assert that
/// running `shards` ways reproduces the sharded engine's single-shard
/// trajectory bit for bit, that cross-shard message flow conserves, and
/// that a re-run is deterministic — everything
/// [`check_sharded_invariants`] checks, reported as [`Drift`]s under
/// the pseudo-study name `"sharded"`.
///
/// Goldens are untouched: `shards = 1` through [`EngineOptions`] keeps
/// the sequential engine and its committed fingerprints; this tier pins
/// the *internal* shard-count invariance of the sharded engine.
///
/// # Errors
///
/// Propagates [`ConfigError`] from failed replications.
pub fn check_sharded_consistency(shards: usize) -> Result<Vec<Drift>, ConfigError> {
    let response = ResponseConfig::none()
        .with_signature_scan(SignatureScan { activation_delay: SimDuration::from_hours(2) })
        .with_detection(DetectionAlgorithm::with_accuracy(0.8))
        .with_education(UserEducation { acceptance_scale: 0.9 })
        .with_immunization(Immunization::uniform(
            SimDuration::from_hours(6),
            SimDuration::from_hours(12),
        ))
        .with_monitoring(Monitoring::with_forced_wait(SimDuration::from_mins(30)))
        .with_blacklist(Blacklist { threshold: 40 });
    let panel = [
        VirusProfile::virus1(),
        VirusProfile::virus2(),
        VirusProfile::virus3(),
        VirusProfile::virus4(),
    ];
    let mut drifts = Vec::new();
    for (i, virus) in panel.into_iter().enumerate() {
        let cell = virus.name.clone();
        let mut config = ScenarioConfig::baseline(virus);
        config.population = PopulationConfig::paper_default(80);
        config.horizon = SimDuration::from_hours(12);
        config.initial_infections = 5;
        config.response = response;
        let config = shardable(&config);
        let report = check_sharded_invariants(
            &config,
            derive_seed(0xC0FFEE, i as u64),
            FelKind::BinaryHeap,
            shards,
        )?;
        for what in report.violations {
            drifts.push(Drift {
                study: "sharded".to_owned(),
                cell: cell.clone(),
                variant: format!("shards-{shards}"),
                what,
            });
        }
    }
    Ok(drifts)
}

/// The committed fingerprint of one study cell at golden scale.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CellGolden {
    /// The cell's legend label (e.g. `"6-Hour Delay"`).
    pub label: String,
    /// Slugified label, stable across runs (see [`crate::sweep::slugify`]).
    pub slug: String,
    /// FNV-1a 64-bit digest over the full per-replication trajectory
    /// byte-stream (series, traffic, final count, every counter,
    /// activation times), rendered as 16 lowercase hex digits.
    pub trajectory_hash: String,
    /// Sampling step of the mean curve, hours.
    pub step_hours: f64,
    /// Mean final infection count across replications.
    pub final_mean: f64,
    /// Per-replication final infection counts, in replication order.
    pub finals: Vec<f64>,
    /// Stride the mean curve was downsampled with.
    pub curve_stride: usize,
    /// Downsampled pointwise-mean infection curve (first point, every
    /// `curve_stride`-th point, and always the last point).
    pub mean_curve: Vec<f64>,
}

/// The committed golden record of one registry study.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StudyGolden {
    /// Stable study name (see [`StudyId::name`]).
    pub study: String,
    /// Scale the fingerprints were generated at.
    pub scale: GoldenScale,
    /// One fingerprint per study cell, in cell order.
    pub cells: Vec<CellGolden>,
}

/// One detected divergence from a golden record.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Drift {
    /// Stable study name (or `"oracle"`).
    pub study: String,
    /// Cell label, empty for study-level drift.
    pub cell: String,
    /// Execution variant that diverged.
    pub variant: String,
    /// What diverged, with expected/actual values.
    pub what: String,
}

impl std::fmt::Display for Drift {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.study)?;
        if !self.cell.is_empty() {
            write!(f, " / {}", self.cell)?;
        }
        write!(f, " [{}]: {}", self.variant, self.what)
    }
}

/// Folds one replication's complete observable output into the digest.
/// Everything [`RunResult`] reports deterministically participates, so
/// any behavioural change — one extra message, one shifted activation
/// second — moves the hash.
fn hash_run(h: &mut Fnv1a64, run: &RunResult) {
    h.write_f64(run.series.step_hours());
    h.write_f64_slice(run.series.values());
    h.write_f64_slice(run.traffic.values());
    h.write_u64(run.final_infected as u64);
    let s = &run.stats;
    for counter in [
        s.messages_sent,
        s.invalid_dials,
        s.deliveries,
        s.blocked_by_scan,
        s.blocked_by_detection,
        s.blocked_by_blacklist,
        s.reads,
        s.acceptances,
        s.throttled_phones,
        s.blacklisted_phones,
        s.bluetooth_offers,
        s.bluetooth_acceptances,
        s.legitimate_messages,
        s.piggyback_sends,
        s.false_positive_throttles,
    ] {
        h.write_u64(counter);
    }
    for time in [
        run.activation.detected_at,
        run.activation.scan_active_at,
        run.activation.detection_active_at,
        run.activation.rollout_starts_at,
    ] {
        match time {
            Some(t) => {
                h.write_u64(1);
                h.write_u64(t.as_secs());
            }
            None => h.write_u64(0),
        }
    }
    match run.gateway_peak_delay {
        Some(d) => {
            h.write_u64(1);
            h.write_u64(d.as_secs());
        }
        None => h.write_u64(0),
    }
}

/// The FNV-1a fingerprint of one replication's complete observable
/// output — the same digest the golden store commits per cell, exposed
/// so equivalence tests (notably the sharded tier) can compare whole
/// trajectories as a single `u64`.
pub fn trajectory_fingerprint(run: &RunResult) -> u64 {
    let mut h = Fnv1a64::new();
    hash_run(&mut h, run);
    h.finish()
}

/// Downsamples a mean curve to at most [`MAX_CURVE_POINTS`] values:
/// every `stride`-th point plus, always, the final one. Returns the
/// stride used.
fn downsample(values: &[f64]) -> (usize, Vec<f64>) {
    if values.is_empty() {
        return (1, Vec::new());
    }
    let stride = values.len().div_ceil(MAX_CURVE_POINTS).max(1);
    let mut curve: Vec<f64> = values.iter().step_by(stride).copied().collect();
    if !(values.len() - 1).is_multiple_of(stride) {
        curve.push(*values.last().expect("non-empty"));
    }
    (stride, curve)
}

/// Runs `id` at golden scale under `variant` and fingerprints every
/// cell.
fn fingerprint_study(
    id: StudyId,
    scale: &GoldenScale,
    variant: &Variant,
) -> Result<Vec<CellGolden>, ConfigError> {
    let opts = scale.options(variant);
    let results = id.run(&opts)?;
    Ok(results
        .iter()
        .map(|lr| {
            let mut h = Fnv1a64::new();
            for run in &lr.result.runs {
                hash_run(&mut h, run);
            }
            let (curve_stride, mean_curve) = downsample(&lr.result.aggregate.mean);
            CellGolden {
                label: lr.label.clone(),
                slug: slugify(&lr.label),
                trajectory_hash: format!("{:016x}", h.finish()),
                step_hours: lr.result.aggregate.step_hours,
                final_mean: lr.result.final_infected.mean,
                finals: lr.result.runs.iter().map(|r| r.final_infected as f64).collect(),
                curve_stride,
                mean_curve,
            }
        })
        .collect())
}

/// Generates the golden record for `id` at `scale`, running the
/// reference variant (binary-heap FEL, one thread, no probe).
///
/// # Errors
///
/// Propagates [`ConfigError`] from scenario validation or failed
/// replications.
pub fn bless_study(id: StudyId, scale: &GoldenScale) -> Result<StudyGolden, ConfigError> {
    let cells = fingerprint_study(id, scale, &Variant::reference())?;
    Ok(StudyGolden { study: id.name().to_owned(), scale: *scale, cells })
}

/// Re-runs `id` under every `variant` and reports all divergences from
/// `golden`. An empty result means every variant reproduced the
/// blessed fingerprints bit-for-bit.
///
/// # Errors
///
/// Propagates [`ConfigError`] from scenario validation or failed
/// replications. A run error is an *error*, not a drift: it means the
/// check could not be carried out.
pub fn check_study(
    id: StudyId,
    golden: &StudyGolden,
    variants: &[Variant],
) -> Result<Vec<Drift>, ConfigError> {
    let mut drifts = Vec::new();
    for variant in variants {
        let fresh = fingerprint_study(id, &golden.scale, variant)?;
        if fresh.len() != golden.cells.len() {
            drifts.push(Drift {
                study: golden.study.clone(),
                cell: String::new(),
                variant: variant.label.to_owned(),
                what: format!(
                    "cell count changed: golden {}, current {}",
                    golden.cells.len(),
                    fresh.len()
                ),
            });
            continue;
        }
        for (want, got) in golden.cells.iter().zip(&fresh) {
            let mut drift = |what: String| {
                drifts.push(Drift {
                    study: golden.study.clone(),
                    cell: want.label.clone(),
                    variant: variant.label.to_owned(),
                    what,
                });
            };
            if got.label != want.label {
                drift(format!("label changed: golden {:?}, current {:?}", want.label, got.label));
                continue;
            }
            if got.trajectory_hash != want.trajectory_hash {
                drift(format!(
                    "trajectory hash changed: golden {}, current {}",
                    want.trajectory_hash, got.trajectory_hash
                ));
            }
            if got.step_hours.to_bits() != want.step_hours.to_bits() {
                drift(format!(
                    "sample step changed: golden {} h, current {} h",
                    want.step_hours, got.step_hours
                ));
            }
            if got.finals != want.finals {
                drift(format!(
                    "per-replication finals changed: golden {:?}, current {:?}",
                    want.finals, got.finals
                ));
            }
            if got.final_mean.to_bits() != want.final_mean.to_bits() {
                drift(format!(
                    "mean final changed: golden {}, current {}",
                    want.final_mean, got.final_mean
                ));
            }
            if got.curve_stride != want.curve_stride || got.mean_curve != want.mean_curve {
                drift(format!(
                    "mean curve changed (stride {} → {}, {} pts → {} pts)",
                    want.curve_stride,
                    got.curve_stride,
                    want.mean_curve.len(),
                    got.mean_curve.len()
                ));
            }
        }
    }
    Ok(drifts)
}

// ---------------------------------------------------------------------
// Golden store on disk
// ---------------------------------------------------------------------

/// Path of the golden file for `id` inside `dir`.
pub fn study_golden_path(dir: &Path, id: StudyId) -> PathBuf {
    dir.join(format!("{}.json", id.name()))
}

/// Writes a study golden to `dir` (created if missing) as pretty JSON.
///
/// # Errors
///
/// Returns a description of the I/O or serialization failure.
pub fn save_study_golden(dir: &Path, golden: &StudyGolden) -> Result<PathBuf, String> {
    std::fs::create_dir_all(dir).map_err(|e| format!("create {}: {e}", dir.display()))?;
    let path = dir.join(format!("{}.json", golden.study));
    let mut text = serde_json::to_string_pretty(golden)
        .map_err(|e| format!("serialize {}: {e}", golden.study))?;
    text.push('\n');
    std::fs::write(&path, text).map_err(|e| format!("write {}: {e}", path.display()))?;
    Ok(path)
}

/// Reads the golden record for `id` from `dir`.
///
/// # Errors
///
/// Returns a description of the I/O or parse failure (including a
/// missing file, with a hint to run `validate bless`).
pub fn load_study_golden(dir: &Path, id: StudyId) -> Result<StudyGolden, String> {
    let path = study_golden_path(dir, id);
    let text = std::fs::read_to_string(&path).map_err(|e| {
        format!("read {}: {e} (run `mpvsim validate bless` to create goldens)", path.display())
    })?;
    serde_json::from_str(&text).map_err(|e| format!("parse {}: {e}", path.display()))
}

/// Writes the oracle golden to `dir` (created if missing).
///
/// # Errors
///
/// Returns a description of the I/O or serialization failure.
pub fn save_oracle_golden(dir: &Path, golden: &OracleGolden) -> Result<PathBuf, String> {
    std::fs::create_dir_all(dir).map_err(|e| format!("create {}: {e}", dir.display()))?;
    let path = dir.join(ORACLE_FILE);
    let mut text =
        serde_json::to_string_pretty(golden).map_err(|e| format!("serialize oracle: {e}"))?;
    text.push('\n');
    std::fs::write(&path, text).map_err(|e| format!("write {}: {e}", path.display()))?;
    Ok(path)
}

/// Reads the oracle golden from `dir`.
///
/// # Errors
///
/// Returns a description of the I/O or parse failure.
pub fn load_oracle_golden(dir: &Path) -> Result<OracleGolden, String> {
    let path = dir.join(ORACLE_FILE);
    let text = std::fs::read_to_string(&path).map_err(|e| {
        format!("read {}: {e} (run `mpvsim validate bless` to create goldens)", path.display())
    })?;
    serde_json::from_str(&text).map_err(|e| format!("parse {}: {e}", path.display()))
}

// ---------------------------------------------------------------------
// Canonical scenario-spec goldens
// ---------------------------------------------------------------------

/// Schema tag of a committed study spec-set file.
pub const SPEC_SET_SCHEMA: &str = "mpvsim-scenario-set/1";

/// The committed canonical form of one registry study: every cell as a
/// full `mpvsim-scenario/1` document at paper scale. These files are
/// the API-level counterpart of the trajectory goldens — they pin the
/// *wire form* of each study, so any change to a scenario default, a
/// serde attribute or a cell definition shows up as a reviewable diff
/// in `goldens/specs/`, and every study stays runnable from a plain
/// JSON file (`mpvsim submit goldens/specs/<study>.json` cell by cell,
/// or any HTTP client against `mpvsim serve`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StudySpecSet {
    /// Schema tag; always [`SPEC_SET_SCHEMA`].
    pub schema: String,
    /// Stable study name (see [`StudyId::name`]).
    pub study: String,
    /// Scale the specs were generated at (normally
    /// [`GoldenScale::paper`]).
    pub scale: GoldenScale,
    /// One canonical spec per study cell, in cell order.
    pub specs: Vec<ScenarioSpec>,
}

/// Builds the canonical spec set of `id` at `scale`. Pure
/// serialization: the study's cells are generated, stamped with the
/// scale's replication plan, and validated — nothing is simulated.
///
/// # Errors
///
/// Propagates [`ConfigError`] if any generated cell fails validation
/// (which would be a bug in the study definition itself).
pub fn bless_study_specs(id: StudyId, scale: &GoldenScale) -> Result<StudySpecSet, ConfigError> {
    let opts = scale.options(&Variant::reference());
    let specs = id
        .cells(&opts)
        .into_iter()
        .map(|cell| {
            let spec = cell.spec.with_replication(scale.reps, scale.master_seed);
            spec.validate()?;
            Ok(spec)
        })
        .collect::<Result<Vec<_>, ConfigError>>()?;
    Ok(StudySpecSet {
        schema: SPEC_SET_SCHEMA.to_owned(),
        study: id.name().to_owned(),
        scale: *scale,
        specs,
    })
}

/// Checks a committed spec set against the current registry: same cell
/// count and order, byte-identical canonical documents (hence identical
/// content hashes), and a JSON round trip of every committed spec that
/// reproduces its canonical bytes exactly.
///
/// # Errors
///
/// Propagates [`ConfigError`] if regenerating the study's cells fails.
/// A divergence between the committed set and the regenerated one is a
/// [`Drift`], not an error.
pub fn check_study_specs(id: StudyId, set: &StudySpecSet) -> Result<Vec<Drift>, ConfigError> {
    let mut drifts = Vec::new();
    let mut drift = |cell: String, what: String| {
        drifts.push(Drift { study: set.study.clone(), cell, variant: "spec".to_owned(), what });
    };
    if set.schema != SPEC_SET_SCHEMA {
        drift(
            String::new(),
            format!("schema tag changed: golden {:?}, expected {SPEC_SET_SCHEMA:?}", set.schema),
        );
    }
    let fresh = bless_study_specs(id, &set.scale)?;
    if fresh.specs.len() != set.specs.len() {
        drift(
            String::new(),
            format!(
                "cell count changed: golden {}, current {}",
                set.specs.len(),
                fresh.specs.len()
            ),
        );
        return Ok(drifts);
    }
    for (current, golden) in fresh.specs.iter().zip(&set.specs) {
        if golden.name != current.name {
            drift(
                current.name.clone(),
                format!("cell renamed: golden {:?}, current {:?}", golden.name, current.name),
            );
            continue;
        }
        if golden.canonical_json() != current.canonical_json() {
            drift(
                current.name.clone(),
                format!(
                    "canonical document changed: golden hash {}, current {}",
                    golden.content_hash(),
                    current.content_hash()
                ),
            );
        }
        match ScenarioSpec::from_json(&golden.canonical_json()) {
            Err(e) => {
                drift(current.name.clone(), format!("committed spec does not re-parse: {e}"));
            }
            Ok(back) => {
                if back.canonical_json() != golden.canonical_json() {
                    drift(
                        current.name.clone(),
                        format!(
                            "round trip not stable: hash {} re-canonicalizes to {}",
                            golden.content_hash(),
                            back.content_hash()
                        ),
                    );
                }
            }
        }
    }
    Ok(drifts)
}

/// Path of the committed spec set for `id` inside golden directory
/// `dir` (the sets live in a `specs/` subdirectory, next to the
/// trajectory goldens).
pub fn study_specs_path(dir: &Path, id: StudyId) -> PathBuf {
    dir.join("specs").join(format!("{}.json", id.name()))
}

/// Writes a study spec set under `dir/specs/` (created if missing) as
/// pretty JSON.
///
/// # Errors
///
/// Returns a description of the I/O or serialization failure.
pub fn save_study_specs(dir: &Path, set: &StudySpecSet) -> Result<PathBuf, String> {
    let specs_dir = dir.join("specs");
    std::fs::create_dir_all(&specs_dir)
        .map_err(|e| format!("create {}: {e}", specs_dir.display()))?;
    let path = specs_dir.join(format!("{}.json", set.study));
    let mut text =
        serde_json::to_string_pretty(set).map_err(|e| format!("serialize {}: {e}", set.study))?;
    text.push('\n');
    std::fs::write(&path, text).map_err(|e| format!("write {}: {e}", path.display()))?;
    Ok(path)
}

/// Reads the committed spec set for `id` from `dir/specs/`.
///
/// # Errors
///
/// Returns a description of the I/O or parse failure (including a
/// missing file, with a hint to run `validate bless`).
pub fn load_study_specs(dir: &Path, id: StudyId) -> Result<StudySpecSet, String> {
    let path = study_specs_path(dir, id);
    let text = std::fs::read_to_string(&path).map_err(|e| {
        format!("read {}: {e} (run `mpvsim validate bless` to create spec goldens)", path.display())
    })?;
    serde_json::from_str(&text).map_err(|e| format!("parse {}: {e}", path.display()))
}

// ---------------------------------------------------------------------
// Differential oracle: DES vs the mean-field ODE
// ---------------------------------------------------------------------

/// Scale of the differential-oracle experiment: the Virus 3 baseline
/// (random dialing — the regime where the mean-field approximation is
/// exact in the large-population limit) at a population small enough
/// for CI but large enough that the stochastic mean tracks the ODE.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct OracleScale {
    /// Population size.
    pub population: usize,
    /// Replications per seed family.
    pub reps: u64,
    /// Master seed of the blessed replication family. The checker also
    /// runs the `master_seed + 1` family for the statistical
    /// acceptance tests.
    pub master_seed: u64,
    /// Observation horizon, hours.
    pub horizon_hours: u64,
}

impl Default for OracleScale {
    fn default() -> Self {
        OracleScale { population: 300, reps: 12, master_seed: 4242, horizon_hours: 24 }
    }
}

impl OracleScale {
    fn config(&self) -> ScenarioConfig {
        let mut config = ScenarioConfig::baseline(VirusProfile::virus3());
        config.population = PopulationConfig::paper_default(self.population);
        config.horizon = SimDuration::from_hours(self.horizon_hours);
        config
    }

    fn run_family(&self, master_seed: u64) -> Result<Vec<f64>, ConfigError> {
        let result = ExperimentPlan::new(self.reps)
            .master_seed(master_seed)
            .engine(EngineOptions::new())
            .run(&self.config())?;
        Ok(result.runs.iter().map(|r| r.final_infected as f64).collect())
    }
}

/// The committed golden record of the differential oracle.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OracleGolden {
    /// Scale the golden family ran at.
    pub scale: OracleScale,
    /// Mean final infection count of the golden family.
    pub final_mean: f64,
    /// Per-replication final counts of the golden family.
    pub finals: Vec<f64>,
}

/// Fraction of the mean-field plateau the simulated mean may deviate
/// by. Matches the calibration of `meanfield::tests`.
const ORACLE_FINAL_TOLERANCE: f64 = 0.20;

/// Runs the golden seed family and records its final-count sample.
///
/// # Errors
///
/// Propagates [`ConfigError`] from scenario validation or failed
/// replications.
pub fn bless_oracle(scale: &OracleScale) -> Result<OracleGolden, ConfigError> {
    let finals = scale.run_family(scale.master_seed)?;
    let mean = finals.iter().sum::<f64>() / finals.len().max(1) as f64;
    Ok(OracleGolden { scale: *scale, final_mean: mean, finals })
}

/// Checks the stochastic engine against the mean-field ODE and the
/// blessed final-count distribution. Three layers:
///
/// 1. **Regression** — the golden seed family must reproduce its
///    blessed finals bit-for-bit.
/// 2. **Differential** — the simulated mean plateau must sit within
///    ±20 % of the ODE plateau, and the time to half the plateau
///    within `max(t½, 2 h)` of the ODE's (the `meanfield` module's
///    calibrated bands).
/// 3. **Statistical acceptance** — an *independent* seed family
///    (`master_seed + 1`) must produce a 95 % CI containing the golden
///    mean, and a two-sample K-S distance against the golden finals
///    below the α = 0.01 critical value.
///
/// All three are deterministic: fixed seed families, no wall-clock
/// input, so a pass is reproducible and a failure replays exactly.
///
/// # Errors
///
/// Propagates [`ConfigError`] from scenario validation or failed
/// replications.
pub fn check_oracle(golden: &OracleGolden) -> Result<Vec<Drift>, ConfigError> {
    let scale = &golden.scale;
    let mut drifts = Vec::new();
    let mut drift = |what: String| {
        drifts.push(Drift {
            study: "oracle".to_owned(),
            cell: String::new(),
            variant: "reference".to_owned(),
            what,
        });
    };

    // 1. Bit-exact regression of the golden family.
    let finals = scale.run_family(scale.master_seed)?;
    if finals != golden.finals {
        drift(format!(
            "golden seed family diverged: blessed {:?}, current {finals:?}",
            golden.finals
        ));
    }

    // 2. Differential comparison against the mean-field ODE.
    let params = MeanFieldParams::virus3_baseline(scale.population);
    let horizon = SimDuration::from_hours(scale.horizon_hours);
    let analytic = meanfield::integrate(&params, horizon, SimDuration::from_hours(1));
    let mf_final = analytic.final_value().unwrap_or(0.0);
    let sim_mean = finals.iter().sum::<f64>() / finals.len().max(1) as f64;
    if (sim_mean - mf_final).abs() >= ORACLE_FINAL_TOLERANCE * mf_final {
        drift(format!(
            "plateau disagrees with the mean-field ODE: sim {sim_mean:.1}, ODE {mf_final:.1} \
             (tolerance ±{:.0}%)",
            ORACLE_FINAL_TOLERANCE * 100.0
        ));
    }
    let result = ExperimentPlan::new(scale.reps)
        .master_seed(scale.master_seed)
        .engine(EngineOptions::new())
        .run(&scale.config())?;
    match (result.mean_time_to_reach(mf_final / 2.0), analytic.time_to_reach(mf_final / 2.0)) {
        (Some(sim_half), Some(mf_half)) => {
            if (sim_half - mf_half).abs() >= mf_half.max(2.0) {
                drift(format!(
                    "half-time disagrees with the mean-field ODE: sim {sim_half:.1} h, \
                     ODE {mf_half:.1} h"
                ));
            }
        }
        (sim_half, mf_half) => {
            drift(format!(
                "half-plateau not reached: sim {sim_half:?}, ODE {mf_half:?} (target {:.1})",
                mf_final / 2.0
            ));
        }
    }

    // 3. Statistical acceptance on an independent seed family.
    let shifted = scale.run_family(scale.master_seed.wrapping_add(1))?;
    let mut summary = RunningSummary::new();
    for &f in &shifted {
        summary.push(f);
    }
    // Floor the CI at the oracle tolerance of the golden mean so a
    // low-variance family cannot fail on sub-tolerance noise.
    let floor = ORACLE_FINAL_TOLERANCE * golden.final_mean;
    if !ci95_contains(&summary, golden.final_mean, floor) {
        drift(format!(
            "independent family CI [{:.1} ± {:.1}] does not contain the golden mean {:.1}",
            summary.mean(),
            summary.ci95_half_width().max(floor),
            golden.final_mean
        ));
    }
    let d = ks_distance(&shifted, &golden.finals);
    let bound = ks_critical_value(shifted.len(), golden.finals.len(), 0.01);
    if d > bound {
        drift(format!(
            "K-S distance {d:.3} between independent and golden finals exceeds the \
             α=0.01 bound {bound:.3}"
        ));
    }
    Ok(drifts)
}

// ---------------------------------------------------------------------
// Simulation fuzzer: invariant checking over random valid scenarios
// ---------------------------------------------------------------------

/// Shared state the [`InvariantProbe`] mirrors out of a run. One lock
/// per hook call is irrelevant at fuzzing scale and keeps the probe
/// trivially `Send`.
#[derive(Debug, Default)]
struct Mirror {
    last_time: Option<SimTime>,
    infected: Vec<bool>,
    blacklisted: Vec<bool>,
    infections: u64,
    deliveries: u64,
    reads: u64,
    acceptances: u64,
    blacklists: u64,
    violations: Vec<String>,
}

impl Mirror {
    fn touch(&mut self, now: SimTime, hook: &str) {
        if let Some(last) = self.last_time {
            if now < last {
                self.violations
                    .push(format!("time ran backwards: {hook} at {now} after an event at {last}"));
            }
        }
        self.last_time = Some(self.last_time.map_or(now, |last| last.max(now)));
    }

    fn slot(flags: &mut Vec<bool>, index: usize) -> &mut bool {
        if flags.len() <= index {
            flags.resize(index + 1, false);
        }
        &mut flags[index]
    }
}

/// A read-only probe that mirrors phone state out of the event stream
/// and records every invariant violation it witnesses:
///
/// * a phone infected twice (infections must be one-shot — the model
///   has no recovery);
/// * a message delivered from a sender *after* that sender was
///   blacklisted (the gateway must drop it);
/// * a phone blacklisted twice;
/// * hook timestamps running backwards (events must fire in
///   nondecreasing time order).
///
/// The probe exposes its state through a shared handle
/// ([`InvariantProbe::mirror`]) because the engine consumes the probe
/// box itself.
#[derive(Debug)]
pub struct InvariantProbe {
    shared: Arc<Mutex<Mirror>>,
}

impl InvariantProbe {
    /// A fresh probe plus the handle its observations land in.
    fn new() -> (InvariantProbe, Arc<Mutex<Mirror>>) {
        let shared = Arc::new(Mutex::new(Mirror::default()));
        (InvariantProbe { shared: shared.clone() }, shared)
    }

    fn with<R>(&self, f: impl FnOnce(&mut Mirror) -> R) -> R {
        f(&mut self.shared.lock().expect("invariant mirror poisoned"))
    }
}

impl SimProbe for InvariantProbe {
    fn on_message_sent(&mut self, now: SimTime, _sender: mpvsim_phonenet::PhoneId, _n: u32) {
        self.with(|m| m.touch(now, "on_message_sent"));
    }

    fn on_message_blocked(
        &mut self,
        now: SimTime,
        _sender: mpvsim_phonenet::PhoneId,
        _cause: BlockCause,
    ) {
        self.with(|m| m.touch(now, "on_message_blocked"));
    }

    fn on_message_delivered(
        &mut self,
        now: SimTime,
        sender: mpvsim_phonenet::PhoneId,
        _recipient: mpvsim_phonenet::PhoneId,
    ) {
        self.with(|m| {
            m.touch(now, "on_message_delivered");
            m.deliveries += 1;
            if *Mirror::slot(&mut m.blacklisted, sender.index()) {
                m.violations.push(format!(
                    "message from blacklisted phone {} delivered at {now}",
                    sender.index()
                ));
            }
        });
    }

    fn on_message_read(&mut self, now: SimTime, _phone: mpvsim_phonenet::PhoneId) {
        self.with(|m| {
            m.touch(now, "on_message_read");
            m.reads += 1;
        });
    }

    fn on_message_accepted(&mut self, now: SimTime, _phone: mpvsim_phonenet::PhoneId) {
        self.with(|m| {
            m.touch(now, "on_message_accepted");
            m.acceptances += 1;
        });
    }

    fn on_infection(
        &mut self,
        now: SimTime,
        phone: mpvsim_phonenet::PhoneId,
        _cause: InfectionCause,
    ) {
        self.with(|m| {
            m.touch(now, "on_infection");
            let slot = Mirror::slot(&mut m.infected, phone.index());
            if *slot {
                m.violations
                    .push(format!("phone {} infected twice (second at {now})", phone.index()));
            }
            *slot = true;
            m.infections += 1;
        });
    }

    fn on_patch_applied(&mut self, now: SimTime, _phone: mpvsim_phonenet::PhoneId, _s: bool) {
        self.with(|m| m.touch(now, "on_patch_applied"));
    }

    fn on_throttled(&mut self, now: SimTime, _phone: mpvsim_phonenet::PhoneId, _fp: bool) {
        self.with(|m| m.touch(now, "on_throttled"));
    }

    fn on_throttle_wait(
        &mut self,
        now: SimTime,
        _phone: mpvsim_phonenet::PhoneId,
        _wait: SimDuration,
    ) {
        self.with(|m| m.touch(now, "on_throttle_wait"));
    }

    fn on_blacklisted(&mut self, now: SimTime, phone: mpvsim_phonenet::PhoneId) {
        self.with(|m| {
            m.touch(now, "on_blacklisted");
            let slot = Mirror::slot(&mut m.blacklisted, phone.index());
            if *slot {
                m.violations
                    .push(format!("phone {} blacklisted twice (second at {now})", phone.index()));
            }
            *slot = true;
            m.blacklists += 1;
        });
    }

    fn on_bluetooth_offer(
        &mut self,
        now: SimTime,
        _src: mpvsim_phonenet::PhoneId,
        _dst: mpvsim_phonenet::PhoneId,
    ) {
        self.with(|m| m.touch(now, "on_bluetooth_offer"));
    }

    fn on_milestone(&mut self, now: SimTime, _milestone: Milestone) {
        self.with(|m| m.touch(now, "on_milestone"));
    }
}

/// What one invariant-checked run reported.
#[derive(Debug, Clone)]
pub struct InvariantReport {
    /// Every violation found; empty means the run upheld all checked
    /// invariants.
    pub violations: Vec<String>,
    /// Events the engine processed (identical across the verification
    /// re-run, or a violation is recorded).
    pub events_processed: u64,
    /// Final infection count.
    pub final_infected: usize,
}

/// Runs `(config, seed)` once instrumented with an [`InvariantProbe`],
/// then cross-checks the probe's mirror against the run's reported
/// aggregates and re-runs the scenario to assert event-count and
/// trajectory determinism. Returns every violation found.
///
/// Checked invariants:
///
/// * probe-witnessed ordering and state machine (see
///   [`InvariantProbe`]);
/// * phone-state conservation: infected phones witnessed by the probe
///   equal the reported final count, and never exceed the population;
/// * monotone cumulative infection series, sampled on the exact
///   `horizon / sample_step + 1` grid, ending at the final count;
/// * message accounting: `acceptances ≤ reads ≤ deliveries`, with the
///   probe's own event counts matching the run's counters;
/// * determinism: an uninstrumented re-run processes the identical
///   event count and produces the bit-identical series and counters.
///
/// # Errors
///
/// Propagates [`ConfigError`] from scenario validation or failed
/// replications.
pub fn check_invariants(
    config: &ScenarioConfig,
    seed: u64,
    fel: FelKind,
) -> Result<InvariantReport, ConfigError> {
    let (probe, shared) = InvariantProbe::new();
    let (run, metrics) = run_scenario_probed_with(config, seed, fel, None, Box::new(probe))?;
    let mut violations = {
        let mirror = shared.lock().expect("invariant mirror poisoned");
        structural_violations(config, &run, &mirror)
    };

    // Determinism: an uninstrumented re-run is bit-identical and
    // processes the same number of events.
    let (again, metrics_again) = run_scenario_with_metrics_fel(config, seed, fel)?;
    if metrics_again.events_processed != metrics.events_processed {
        violations.push(format!(
            "determinism: re-run processed {} events, first run {}",
            metrics_again.events_processed, metrics.events_processed
        ));
    }
    if series_bits(&again.series) != series_bits(&run.series) || again.stats != run.stats {
        violations.push("determinism: re-run trajectory differs".to_owned());
    }

    Ok(InvariantReport {
        violations,
        events_processed: metrics.events_processed,
        final_infected: run.final_infected,
    })
}

/// The bit pattern of a time series, for exact equality comparison.
fn series_bits(series: &mpvsim_stats::TimeSeries) -> Vec<u64> {
    series.values().iter().map(|v| v.to_bits()).collect()
}

/// The engine-independent structural checks shared by
/// [`check_invariants`] and [`check_sharded_invariants`]: probe-mirror
/// cross-checks, conservation, series shape and message accounting.
fn structural_violations(config: &ScenarioConfig, run: &RunResult, mirror: &Mirror) -> Vec<String> {
    let mut violations = mirror.violations.clone();
    let n = config.population.size();

    // Phone-state conservation: every phone is in exactly one health
    // state, so the probe's infected set must match the final count and
    // stay within the population.
    let witnessed = mirror.infected.iter().filter(|&&i| i).count();
    if witnessed != run.final_infected {
        violations.push(format!(
            "conservation: probe witnessed {witnessed} infected phones, run reports {}",
            run.final_infected
        ));
    }
    if mirror.infections != run.final_infected as u64 {
        violations.push(format!(
            "conservation: {} infection events for {} infected phones",
            mirror.infections, run.final_infected
        ));
    }
    if run.final_infected > n {
        violations.push(format!("{} infected out of {n} phones", run.final_infected));
    }

    // Monotone cumulative infections on the exact sampling grid.
    let vals = run.series.values();
    if vals.windows(2).any(|w| w[1] < w[0]) {
        violations.push("cumulative infection series decreased".to_owned());
    }
    let expected_len = (config.horizon.as_secs() / config.sample_step.as_secs()) as usize + 1;
    if vals.len() != expected_len {
        violations.push(format!("series has {} samples, grid demands {expected_len}", vals.len()));
    }
    if vals.last().map(|&v| v as usize) != Some(run.final_infected) {
        violations.push(format!(
            "series ends at {:?}, final count is {}",
            vals.last(),
            run.final_infected
        ));
    }
    if run.traffic.values().last().map(|&v| v as u64) != Some(run.stats.messages_sent) {
        violations.push(format!(
            "traffic series ends at {:?}, {} messages were sent",
            run.traffic.values().last(),
            run.stats.messages_sent
        ));
    }

    // Message accounting, cross-checked against the probe's mirror.
    let s = &run.stats;
    if !(s.acceptances <= s.reads && s.reads <= s.deliveries) {
        violations.push(format!(
            "accounting: acceptances {} ≤ reads {} ≤ deliveries {} violated",
            s.acceptances, s.reads, s.deliveries
        ));
    }
    for (name, probe_count, stat_count) in [
        ("deliveries", mirror.deliveries, s.deliveries),
        ("reads", mirror.reads, s.reads),
        ("acceptances", mirror.acceptances, s.acceptances),
        ("blacklisted phones", mirror.blacklists, s.blacklisted_phones),
    ] {
        if probe_count != stat_count {
            violations.push(format!(
                "accounting: probe saw {probe_count} {name}, counters report {stat_count}"
            ));
        }
    }
    violations
}

/// Rewrites `config` into its nearest shardable relative: the features
/// [`crate::reject_unshardable`] turns away (Bluetooth/mobility,
/// legitimate traffic, piggyback, gateway capacity, bounded inboxes)
/// are stripped, and a read-delay distribution whose minimum is zero —
/// which would give the conservative barrier no lookahead — is replaced
/// by a shifted-exponential with a five-minute floor. Used by the fuzz
/// sweep and the sharded consistency tier to derive sharded coverage
/// from arbitrary valid scenarios.
pub fn shardable(config: &ScenarioConfig) -> ScenarioConfig {
    let mut out = config.clone();
    out.virus.bluetooth = None;
    out.virus.piggyback = false;
    out.mobility = None;
    out.behavior.legitimate_mms = None;
    out.gateway_capacity_per_hour = None;
    out.inbox_cap = None;
    if out.behavior.read_delay.minimum() == SimDuration::ZERO {
        out.behavior.read_delay =
            DelaySpec::shifted_exp(SimDuration::from_mins(5), SimDuration::from_hours(1));
    }
    out
}

/// Runs `(config, seed)` on the sharded engine instrumented with an
/// [`InvariantProbe`] and checks every engine-independent invariant of
/// [`check_invariants`], plus the sharded contract:
///
/// * cross-shard flow conservation: every envelope routed out of a
///   shard is delivered into exactly one other shard
///   ([`crate::ShardTelemetry::check_flow`]);
/// * shard-count invariance: the full trajectory fingerprint at
///   `shards` equals the sharded engine's own single-shard fingerprint;
/// * determinism: an uninstrumented sharded re-run at the same shard
///   count is bit-identical and processes the same event count.
///
/// The scenario must already be shardable (see [`shardable`]).
///
/// # Errors
///
/// Propagates [`ConfigError`] from validation, unshardable features, or
/// failed replications.
pub fn check_sharded_invariants(
    config: &ScenarioConfig,
    seed: u64,
    fel: FelKind,
    shards: usize,
) -> Result<InvariantReport, ConfigError> {
    let (probe, shared) = InvariantProbe::new();
    let outcome = crate::shard::run_scenario_sharded(
        config,
        seed,
        fel,
        None,
        shards,
        Some(Box::new(probe)),
        crate::shard::ShardMode::Auto,
    )?;
    let run = outcome.result;
    let mut violations = {
        let mirror = shared.lock().expect("invariant mirror poisoned");
        structural_violations(config, &run, &mirror)
    };
    if let Err(e) = outcome.telemetry.check_flow() {
        violations.push(format!("cross-shard flow: {e}"));
    }

    let rerun = |shards: usize| {
        crate::shard::run_scenario_sharded(
            config,
            seed,
            fel,
            None,
            shards,
            None,
            crate::shard::ShardMode::Auto,
        )
    };

    // Shard-count invariance: `shards` ways must reproduce the sharded
    // engine's single-shard trajectory byte for byte.
    let baseline = rerun(1)?;
    if trajectory_fingerprint(&baseline.result) != trajectory_fingerprint(&run) {
        violations.push(format!(
            "sharding: trajectory at {shards} shards differs from the single-shard run \
             (final infected {} vs {})",
            run.final_infected, baseline.result.final_infected
        ));
    }

    // Determinism: a sharded re-run at the same shard count is
    // bit-identical and processes the same number of events.
    let again = rerun(shards)?;
    if again.metrics.events_processed != outcome.metrics.events_processed {
        violations.push(format!(
            "determinism: sharded re-run processed {} events, first run {}",
            again.metrics.events_processed, outcome.metrics.events_processed
        ));
    }
    if trajectory_fingerprint(&again.result) != trajectory_fingerprint(&run) {
        violations.push("determinism: sharded re-run trajectory differs".to_owned());
    }

    Ok(InvariantReport {
        violations,
        events_processed: outcome.metrics.events_processed,
        final_infected: run.final_infected,
    })
}

/// Deterministically generates the `case`-th random valid scenario of
/// the `master_seed` fuzzing family. Mirrors the proptest strategy of
/// `tests/invariants.rs` but adds topology diversity (all five graph
/// generators) and is reproducible from the two integers alone, so a
/// CI failure names its exact replay.
pub fn fuzz_case(master_seed: u64, case: u64) -> ScenarioConfig {
    let mut rng = StdRng::seed_from_u64(derive_seed(master_seed, case));
    let n: usize = rng.random_range(20..80);

    // Virus.
    let dial = rng.random_bool(0.5);
    let gap_mins: u64 = rng.random_range(1..60);
    let targeting = if dial {
        TargetingStrategy::RandomDialing { valid_fraction: rng.random_range(0.0..=1.0) }
    } else {
        TargetingStrategy::ContactList
    };
    let bluetooth = rng.random_bool(0.25);
    let virus = VirusProfile {
        name: format!("fuzz-virus-{master_seed}-{case}"),
        targeting,
        send_gap: DelaySpec::shifted_exp(
            SimDuration::from_mins(gap_mins),
            SimDuration::from_mins(gap_mins / 2 + 1),
        ),
        recipients_per_message: if dial { 1 } else { rng.random_range(1..5) },
        quota: if rng.random_bool(0.5) {
            SendQuota::per_day(rng.random_range(1..20))
        } else {
            SendQuota::unlimited()
        },
        dormancy: SimDuration::from_hours(rng.random_range(0..3)),
        global_day_bursts: rng.random_bool(0.5),
        mms_vector: true,
        bluetooth: bluetooth.then(BluetoothVector::default_class2),
        piggyback: false,
    };

    // Response: each mechanism independently present.
    let mut response = ResponseConfig::none();
    if rng.random_bool(0.5) {
        response = response.with_signature_scan(SignatureScan {
            activation_delay: SimDuration::from_hours(rng.random_range(1..24)),
        });
    }
    if rng.random_bool(0.5) {
        response =
            response.with_detection(DetectionAlgorithm::with_accuracy(rng.random_range(0.5..1.0)));
    }
    if rng.random_bool(0.5) {
        response =
            response.with_education(UserEducation { acceptance_scale: rng.random_range(0.0..1.0) });
    }
    if rng.random_bool(0.5) {
        response = response.with_immunization(Immunization::uniform(
            SimDuration::from_hours(rng.random_range(1..24)),
            SimDuration::from_hours(rng.random_range(0..12)),
        ));
    }
    if rng.random_bool(0.5) {
        response = response.with_monitoring(Monitoring::with_forced_wait(SimDuration::from_mins(
            rng.random_range(5..60),
        )));
    }
    if rng.random_bool(0.5) {
        response = response.with_blacklist(Blacklist { threshold: rng.random_range(1..40) });
    }

    // Topology: all five generators, parameters kept valid for `n`.
    let mean_degree = rng.random_range(1u64..30).min(n as u64 - 1) as f64;
    let lattice_k = (2 * rng.random_range(1usize..=5)).min((n - 1) & !1usize).max(2);
    let topology = match rng.random_range(0u32..5) {
        0 => GraphSpec::erdos_renyi(n, mean_degree),
        1 => GraphSpec::power_law(n, mean_degree),
        2 => GraphSpec::watts_strogatz(n, lattice_k, rng.random_range(0.0..=1.0)),
        3 => GraphSpec::ring(n, lattice_k),
        _ => GraphSpec::complete(n),
    };

    let mut config = ScenarioConfig::baseline(virus);
    config.response = response;
    config.population =
        PopulationConfig { topology, vulnerable_fraction: rng.random_range(0.0..=1.0) };
    config.horizon = SimDuration::from_hours(rng.random_range(2..36));
    config.initial_infections = rng.random_range(1..4);
    if rng.random_bool(0.3) {
        config.behavior.legitimate_mms =
            Some(DelaySpec::exponential(SimDuration::from_hours(rng.random_range(1..12))));
    }
    if bluetooth {
        config.mobility = Some(MobilityConfig::downtown());
    }
    if rng.random_bool(0.3) {
        config.gateway_capacity_per_hour = Some(rng.random_range(60..3600));
    }
    config
}

/// One failed fuzz case.
#[derive(Debug, Clone)]
pub struct FuzzFailure {
    /// Case index inside the family (replay with
    /// [`fuzz_case`]`(master_seed, case)`).
    pub case: u64,
    /// Replication seed the case ran with.
    pub seed: u64,
    /// Shard count of the failing leg (`1` = the sequential-engine
    /// leg; greater = the sharded leg of the same case).
    pub shards: usize,
    /// Everything [`check_invariants`] (or its sharded twin) reported.
    pub violations: Vec<String>,
}

/// The outcome of one fuzzing sweep.
#[derive(Debug, Clone)]
pub struct FuzzReport {
    /// Cases executed (each case runs a sequential leg and a sharded
    /// leg).
    pub cases: u64,
    /// Cases with at least one invariant violation (empty = pass).
    pub failures: Vec<FuzzFailure>,
}

/// The shard counts the fuzz sweep rotates through on its sharded leg.
const FUZZ_SHARDS: [usize; 3] = [2, 3, 8];

/// Runs `count` deterministic fuzz cases from `master_seed`. Each case
/// runs twice: the generated scenario through [`check_invariants`] on
/// the sequential engine, and its [`shardable`] transform through
/// [`check_sharded_invariants`] with a rotating shard count of 2, 3 or
/// 8 — so every random topology and mechanism mix also exercises the
/// time-window barrier, cross-shard flow conservation and shard-count
/// invariance. Cases alternate FEL backends for extra coverage. The
/// sweep is a pure function of its two arguments, so CI and a local
/// replay see identical cases.
///
/// # Errors
///
/// Propagates [`ConfigError`] from failed replications (generated
/// configurations are valid by construction, and the shardable
/// transform strips everything the sharded engine rejects).
pub fn fuzz_cases(master_seed: u64, count: u64) -> Result<FuzzReport, ConfigError> {
    let mut failures = Vec::new();
    for case in 0..count {
        let config = fuzz_case(master_seed, case);
        debug_assert!(config.validate().is_ok(), "fuzz_case generated an invalid config");
        let seed = derive_seed(master_seed, case.wrapping_add(0x5eed));
        let fel = if case % 2 == 0 { FelKind::BinaryHeap } else { FelKind::Calendar };
        let report = check_invariants(&config, seed, fel)?;
        if !report.violations.is_empty() {
            failures.push(FuzzFailure { case, seed, shards: 1, violations: report.violations });
        }
        let shards = FUZZ_SHARDS[(case % FUZZ_SHARDS.len() as u64) as usize];
        let sharded_config = shardable(&config);
        debug_assert!(
            crate::shard::reject_unshardable(&sharded_config).is_ok(),
            "shardable() left an unshardable feature behind"
        );
        let report = check_sharded_invariants(&sharded_config, seed, fel, shards)?;
        if !report.violations.is_empty() {
            failures.push(FuzzFailure { case, seed, shards, violations: report.violations });
        }
    }
    Ok(FuzzReport { cases: count, failures })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpvsim_phonenet::PhoneId;

    fn tiny_scale() -> GoldenScale {
        GoldenScale { population: 40, reps: 2, master_seed: 7 }
    }

    #[test]
    fn downsample_keeps_endpoints_and_bounds_length() {
        let values: Vec<f64> = (0..100).map(f64::from).collect();
        let (stride, curve) = downsample(&values);
        assert_eq!(curve.first(), Some(&0.0));
        assert_eq!(curve.last(), Some(&99.0));
        assert!(curve.len() <= MAX_CURVE_POINTS + 1);
        assert_eq!(curve[1], stride as f64);

        let (_, short) = downsample(&[1.0, 2.0]);
        assert_eq!(short, vec![1.0, 2.0]);
        let (_, empty) = downsample(&[]);
        assert!(empty.is_empty());
    }

    #[test]
    fn bless_then_check_is_clean_across_all_variants() {
        let scale = tiny_scale();
        let id = StudyId::from_name("ext_congestion").expect("registered");
        let golden = bless_study(id, &scale).expect("bless runs");
        assert!(!golden.cells.is_empty());
        let drifts = check_study(id, &golden, &Variant::standard(2)).expect("check runs");
        assert!(drifts.is_empty(), "unexpected drift: {drifts:?}");
    }

    #[test]
    fn tampered_golden_is_caught() {
        let scale = tiny_scale();
        let id = StudyId::from_name("ext_congestion").expect("registered");
        let mut golden = bless_study(id, &scale).expect("bless runs");
        golden.cells[0].trajectory_hash = format!("{:016x}", 0xdead_beefu64);
        let drifts = check_study(id, &golden, &[Variant::reference()]).expect("check runs");
        assert!(
            drifts.iter().any(|d| d.what.contains("trajectory hash")),
            "tampered hash not reported: {drifts:?}"
        );
    }

    #[test]
    fn changed_scale_changes_fingerprints() {
        let id = StudyId::from_name("ext_congestion").expect("registered");
        let a = bless_study(id, &tiny_scale()).expect("bless runs");
        let b =
            bless_study(id, &GoldenScale { master_seed: 8, ..tiny_scale() }).expect("bless runs");
        assert_ne!(a.cells[0].trajectory_hash, b.cells[0].trajectory_hash);
    }

    #[test]
    fn golden_json_roundtrip_is_bit_exact() {
        let scale = tiny_scale();
        let id = StudyId::from_name("ext_congestion").expect("registered");
        let golden = bless_study(id, &scale).expect("bless runs");
        let text = serde_json::to_string_pretty(&golden).expect("serialize");
        let back: StudyGolden = serde_json::from_str(&text).expect("parse");
        assert_eq!(golden, back, "golden record must survive a JSON round trip bit-exactly");
    }

    #[test]
    fn store_roundtrip() {
        let dir = std::env::temp_dir().join(format!("mpvsim-goldens-{}", std::process::id()));
        let scale = tiny_scale();
        let id = StudyId::from_name("ext_congestion").expect("registered");
        let golden = bless_study(id, &scale).expect("bless runs");
        save_study_golden(&dir, &golden).expect("save");
        let back = load_study_golden(&dir, id).expect("load");
        assert_eq!(golden, back);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn spec_sets_bless_check_and_roundtrip_for_every_study() {
        // Pure serialization, so running every study at paper scale is
        // cheap: this is the "all 16 studies are expressible as
        // mpvsim-scenario/1 documents with stable hashes" guarantee.
        let scale = GoldenScale::paper();
        for id in StudyId::all() {
            let set = bless_study_specs(id, &scale).expect("bless specs");
            assert!(!set.specs.is_empty(), "{} has no cells", id.name());
            for spec in &set.specs {
                spec.validate().expect("blessed specs validate");
                let bytes = spec.canonical_json();
                let back = ScenarioSpec::from_json(&bytes).expect("canonical form parses");
                assert_eq!(back.canonical_json(), bytes, "round trip drifted");
                assert_eq!(back.content_hash(), spec.content_hash());
            }
            let drifts = check_study_specs(id, &set).expect("check runs");
            assert!(drifts.is_empty(), "{}: {drifts:?}", id.name());
        }
    }

    #[test]
    fn tampered_spec_set_is_caught() {
        let id = StudyId::from_name("fig1_baseline").expect("registered");
        let mut set = bless_study_specs(id, &GoldenScale::paper()).expect("bless specs");
        set.specs[0].master_seed ^= 1;
        let drifts = check_study_specs(id, &set).expect("check runs");
        assert!(
            drifts.iter().any(|d| d.what.contains("canonical document")),
            "tampered spec not reported: {drifts:?}"
        );
        set.specs.pop();
        let drifts = check_study_specs(id, &set).expect("check runs");
        assert!(drifts.iter().any(|d| d.what.contains("cell count")), "{drifts:?}");
    }

    #[test]
    fn spec_set_store_roundtrip() {
        let dir = std::env::temp_dir().join(format!("mpvsim-spec-goldens-{}", std::process::id()));
        let id = StudyId::from_name("ext_congestion").expect("registered");
        let set = bless_study_specs(id, &GoldenScale::paper()).expect("bless specs");
        let path = save_study_specs(&dir, &set).expect("save");
        assert_eq!(path, study_specs_path(&dir, id));
        let back = load_study_specs(&dir, id).expect("load");
        assert_eq!(set, back);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn oracle_blesses_and_checks_clean_at_reduced_scale() {
        let scale = OracleScale { population: 200, reps: 6, ..OracleScale::default() };
        let golden = bless_oracle(&scale).expect("bless runs");
        assert_eq!(golden.finals.len(), 6);
        let drifts = check_oracle(&golden).expect("check runs");
        assert!(drifts.is_empty(), "oracle drifted: {drifts:?}");
    }

    #[test]
    fn oracle_catches_a_corrupted_golden_mean() {
        let scale = OracleScale { population: 200, reps: 6, ..OracleScale::default() };
        let mut golden = bless_oracle(&scale).expect("bless runs");
        // A golden mean far outside every band must trip the regression
        // and statistical layers.
        golden.final_mean *= 3.0;
        for f in &mut golden.finals {
            *f *= 3.0;
        }
        let drifts = check_oracle(&golden).expect("check runs");
        assert!(!drifts.is_empty(), "corrupted oracle golden not caught");
    }

    #[test]
    fn invariant_probe_flags_double_infection_and_post_blacklist_delivery() {
        let (mut probe, shared) = InvariantProbe::new();
        let t = SimTime::from_secs(10);
        probe.on_infection(t, PhoneId(3), InfectionCause::Seed);
        probe.on_infection(t, PhoneId(3), InfectionCause::Mms);
        probe.on_blacklisted(t, PhoneId(5));
        probe.on_message_delivered(SimTime::from_secs(20), PhoneId(5), PhoneId(1));
        probe.on_message_sent(SimTime::from_secs(5), PhoneId(1), 1); // time reversal
        let mirror = shared.lock().unwrap();
        let all = mirror.violations.join("\n");
        assert!(all.contains("infected twice"), "{all}");
        assert!(all.contains("blacklisted phone 5"), "{all}");
        assert!(all.contains("time ran backwards"), "{all}");
    }

    #[test]
    fn check_invariants_passes_on_paper_scenarios() {
        let mut config = ScenarioConfig::baseline(VirusProfile::virus3());
        config.population = PopulationConfig::paper_default(60);
        config.horizon = SimDuration::from_hours(6);
        config.response = ResponseConfig::none().with_blacklist(Blacklist { threshold: 5 });
        for fel in [FelKind::BinaryHeap, FelKind::Calendar] {
            let report = check_invariants(&config, 99, fel).expect("valid scenario");
            assert!(report.violations.is_empty(), "violations: {:?}", report.violations);
            assert!(report.events_processed > 0);
        }
    }

    #[test]
    fn sharded_consistency_tier_is_clean() {
        let drifts = check_sharded_consistency(3).expect("panel runs");
        assert!(drifts.is_empty(), "sharded drifts: {drifts:?}");
    }

    #[test]
    fn shardable_transform_always_passes_the_shard_gate() {
        for case in 0..30 {
            let config = shardable(&fuzz_case(23, case));
            assert!(
                crate::shard::reject_unshardable(&config).is_ok(),
                "case {case} still unshardable"
            );
            assert!(config.validate().is_ok(), "case {case} invalid after transform");
        }
    }

    #[test]
    fn fuzz_cases_are_valid_deterministic_and_clean() {
        for case in 0..20 {
            let config = fuzz_case(11, case);
            assert!(config.validate().is_ok(), "case {case} invalid: {config:?}");
            assert_eq!(config, fuzz_case(11, case), "case {case} not deterministic");
        }
        let report = fuzz_cases(11, 4).expect("fuzz runs");
        assert_eq!(report.cases, 4);
        assert!(report.failures.is_empty(), "fuzz failures: {:?}", report.failures);
    }
}
