//! One experiment definition per figure (and per quantitative prose
//! claim) of the paper's evaluation section. The CLI binaries and the
//! benchmark harness both call into these, so the figure definitions live
//! in exactly one place.
//!
//! | id | paper artefact | function |
//! |---|---|---|
//! | FIG1 | Fig. 1 baseline curves, 4 viruses | [`fig1_baseline`] |
//! | FIG2 | Fig. 2 signature scan, delays 6/12/24 h (Virus 1) | [`fig2_virus_scan`] |
//! | FIG3 | Fig. 3 detection accuracy .80–.99 (Virus 2) | [`fig3_detection`] |
//! | FIG4 | Fig. 4 user education (all viruses) | [`fig4_education`] |
//! | FIG5 | Fig. 5 immunization, dev × rollout (Virus 4) | [`fig5_immunization`] |
//! | FIG6 | Fig. 6 monitoring waits 15/30/60 min (Virus 3) | [`fig6_monitoring`] |
//! | FIG7 | Fig. 7 blacklist thresholds 10–40 (Virus 3) | [`fig7_blacklist`] |
//! | TXT-BL | §5.2 blacklisting vs Viruses 1/2/4 | [`blacklist_matrix`] |
//! | TXT-SCALE | §5.3 "results scale … to 2000 phones" | [`scaling_study`] |
//! | EXT-COMBO | §6 combined mechanisms | [`combo_study`] |

use mpvsim_des::{FelKind, ObserverHandle, SimDuration};

use crate::config::{ConfigError, MobilityConfig, PopulationConfig, ScenarioConfig};
use crate::response::{
    Blacklist, DetectionAlgorithm, Immunization, Monitoring, ResponseConfig, SignatureScan,
    UserEducation,
};
use crate::run::{ExperimentPlan, ExperimentResult};
use crate::virus::{BluetoothVector, VirusProfile};

/// Common knobs for every figure experiment.
#[derive(Debug, Clone)]
pub struct FigureOptions {
    /// Replications per scenario.
    pub reps: u64,
    /// Master seed; replication `r` of every scenario derives from it.
    pub master_seed: u64,
    /// Worker threads for the replication batch.
    pub threads: usize,
    /// Population size (the paper uses 1000; the scaling study overrides
    /// this).
    pub population: usize,
    /// Observer attached to every experiment the figure runs (progress
    /// reporting, metrics capture); defaults to a no-op and never affects
    /// the curves.
    pub observer: ObserverHandle,
    /// Future-event-list backend every replication runs on; a pure
    /// performance knob that never affects the curves (see [`FelKind`]).
    pub fel: FelKind,
}

impl Default for FigureOptions {
    fn default() -> Self {
        FigureOptions {
            reps: 10,
            master_seed: 2007,
            threads: 4,
            population: 1000,
            observer: ObserverHandle::noop(),
            fel: FelKind::default(),
        }
    }
}

impl FigureOptions {
    /// A faster variant for smoke tests and benches: fewer replications.
    pub fn quick() -> Self {
        FigureOptions { reps: 3, ..FigureOptions::default() }
    }

    /// The [`ExperimentPlan`] these options describe.
    pub fn plan(&self) -> ExperimentPlan {
        ExperimentPlan::new(self.reps)
            .master_seed(self.master_seed)
            .threads(self.threads)
            .observer_handle(self.observer.clone())
            .fel(self.fel)
    }
}

/// One labelled curve of a figure.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct LabeledResult {
    /// Legend label, matching the paper's (e.g. "6-Hour Delay").
    pub label: String,
    /// The replicated, aggregated experiment behind the curve.
    pub result: ExperimentResult,
}

fn base_config(virus: VirusProfile, opts: &FigureOptions) -> ScenarioConfig {
    ScenarioConfig::baseline(virus)
        .with_population(PopulationConfig::paper_default(opts.population))
}

fn run_labeled(
    label: impl Into<String>,
    config: &ScenarioConfig,
    opts: &FigureOptions,
) -> Result<LabeledResult, ConfigError> {
    let result = opts.plan().run(config)?;
    Ok(LabeledResult { label: label.into(), result })
}

/// **Figure 1** — baseline infection curves for all four viruses, no
/// response mechanisms.
///
/// # Errors
///
/// Propagates [`ConfigError`] from scenario validation.
pub fn fig1_baseline(opts: &FigureOptions) -> Result<Vec<LabeledResult>, ConfigError> {
    VirusProfile::all_four()
        .into_iter()
        .map(|v| {
            let label = v.name.clone();
            let config = base_config(v, opts);
            run_labeled(label, &config, opts)
        })
        .collect()
}

/// **Figure 2** — gateway signature scan against Virus 1, activation
/// delay 6 / 12 / 24 h after detectability (plus the baseline).
///
/// # Errors
///
/// Propagates [`ConfigError`] from scenario validation.
pub fn fig2_virus_scan(opts: &FigureOptions) -> Result<Vec<LabeledResult>, ConfigError> {
    let mut out = vec![run_labeled("Baseline", &base_config(VirusProfile::virus1(), opts), opts)?];
    for delay_h in [6u64, 12, 24] {
        let config = base_config(VirusProfile::virus1(), opts).with_response(
            ResponseConfig::none().with_signature_scan(SignatureScan {
                activation_delay: SimDuration::from_hours(delay_h),
            }),
        );
        out.push(run_labeled(format!("{delay_h}-Hour Delay"), &config, opts)?);
    }
    Ok(out)
}

/// **Figure 3** — gateway detection algorithm against Virus 2 at
/// accuracies 0.99 / 0.95 / 0.90 / 0.85 / 0.80 (plus the baseline).
///
/// # Errors
///
/// Propagates [`ConfigError`] from scenario validation.
pub fn fig3_detection(opts: &FigureOptions) -> Result<Vec<LabeledResult>, ConfigError> {
    let mut out = vec![run_labeled("Baseline", &base_config(VirusProfile::virus2(), opts), opts)?];
    for accuracy in [0.99, 0.95, 0.90, 0.85, 0.80] {
        let config = base_config(VirusProfile::virus2(), opts).with_response(
            ResponseConfig::none().with_detection(DetectionAlgorithm::with_accuracy(accuracy)),
        );
        out.push(run_labeled(format!("{accuracy:.2} Accuracy"), &config, opts)?);
    }
    Ok(out)
}

/// **Figure 4** — user education: every virus's baseline (total
/// acceptance 0.40) against acceptance scaled to ≈ 0.20, plus the ≈ 0.10
/// case the text discusses.
///
/// # Errors
///
/// Propagates [`ConfigError`] from scenario validation.
pub fn fig4_education(opts: &FigureOptions) -> Result<Vec<LabeledResult>, ConfigError> {
    let mut out = Vec::new();
    for v in VirusProfile::all_four() {
        let name = v.name.clone();
        out.push(run_labeled(name.clone(), &base_config(v.clone(), opts), opts)?);
        for (scale, tag) in [(0.5, "User Ed 0.20"), (0.25, "User Ed 0.10")] {
            let config = base_config(v.clone(), opts).with_response(
                ResponseConfig::none().with_education(UserEducation { acceptance_scale: scale }),
            );
            out.push(run_labeled(format!("{name} {tag}"), &config, opts)?);
        }
    }
    Ok(out)
}

/// **Figure 5** — immunization against Virus 4: patch development 24 or
/// 48 h, rollout 1 / 6 / 24 h (plus the baseline). Labels follow the
/// paper's "Hours 24-30" convention (development end — rollout end).
///
/// # Errors
///
/// Propagates [`ConfigError`] from scenario validation.
pub fn fig5_immunization(opts: &FigureOptions) -> Result<Vec<LabeledResult>, ConfigError> {
    let mut out = vec![run_labeled("Baseline", &base_config(VirusProfile::virus4(), opts), opts)?];
    for dev_h in [24u64, 48] {
        for rollout_h in [1u64, 6, 24] {
            let config = base_config(VirusProfile::virus4(), opts).with_response(
                ResponseConfig::none().with_immunization(Immunization::uniform(
                    SimDuration::from_hours(dev_h),
                    SimDuration::from_hours(rollout_h),
                )),
            );
            out.push(run_labeled(format!("Hours {dev_h}-{}", dev_h + rollout_h), &config, opts)?);
        }
    }
    Ok(out)
}

/// **Figure 6** — monitoring against Virus 3: forced waits of 15 / 30 /
/// 60 minutes (plus the baseline), observed over 25 hours.
///
/// # Errors
///
/// Propagates [`ConfigError`] from scenario validation.
pub fn fig6_monitoring(opts: &FigureOptions) -> Result<Vec<LabeledResult>, ConfigError> {
    let horizon = SimDuration::from_hours(25);
    let mut out = vec![run_labeled(
        "Baseline",
        &base_config(VirusProfile::virus3(), opts).with_horizon(horizon),
        opts,
    )?];
    for wait_min in [15u64, 30, 60] {
        let config = base_config(VirusProfile::virus3(), opts).with_horizon(horizon).with_response(
            ResponseConfig::none()
                .with_monitoring(Monitoring::with_forced_wait(SimDuration::from_mins(wait_min))),
        );
        out.push(run_labeled(format!("{wait_min}-Minute Wait"), &config, opts)?);
    }
    Ok(out)
}

/// **Figure 7** — blacklisting against Virus 3: thresholds of 10 / 20 /
/// 30 / 40 suspected messages (plus the baseline), observed over 25 h.
///
/// # Errors
///
/// Propagates [`ConfigError`] from scenario validation.
pub fn fig7_blacklist(opts: &FigureOptions) -> Result<Vec<LabeledResult>, ConfigError> {
    let horizon = SimDuration::from_hours(25);
    let mut out = vec![run_labeled(
        "Baseline",
        &base_config(VirusProfile::virus3(), opts).with_horizon(horizon),
        opts,
    )?];
    for threshold in [10u32, 20, 30, 40] {
        let config = base_config(VirusProfile::virus3(), opts)
            .with_horizon(horizon)
            .with_response(ResponseConfig::none().with_blacklist(Blacklist { threshold }));
        out.push(run_labeled(format!("{threshold} Messages"), &config, opts)?);
    }
    Ok(out)
}

/// **§5.2 prose claim** — blacklisting against the contact-list viruses:
/// Viruses 1, 2 and 4 at thresholds 10 / 20 / 30 / 40, plus their
/// baselines. The paper: threshold 10 restricts Viruses 1 and 4 to
/// ≈ 60 % of baseline penetration; all thresholds are ineffective against
/// multi-recipient Virus 2.
///
/// # Errors
///
/// Propagates [`ConfigError`] from scenario validation.
pub fn blacklist_matrix(opts: &FigureOptions) -> Result<Vec<LabeledResult>, ConfigError> {
    let mut out = Vec::new();
    for v in [VirusProfile::virus1(), VirusProfile::virus2(), VirusProfile::virus4()] {
        let name = v.name.clone();
        out.push(run_labeled(format!("{name} Baseline"), &base_config(v.clone(), opts), opts)?);
        for threshold in [10u32, 20, 30, 40] {
            let config = base_config(v.clone(), opts)
                .with_response(ResponseConfig::none().with_blacklist(Blacklist { threshold }));
            out.push(run_labeled(format!("{name} Threshold {threshold}"), &config, opts)?);
        }
    }
    Ok(out)
}

/// **§5.3 prose claim** — the results scale with population size (the
/// paper compares 1000 against 2000 phones): baselines for Viruses 1 and
/// 3 at `opts.population` and at twice that. Penetration *fractions*
/// (infected / vulnerable) should match across sizes.
///
/// # Errors
///
/// Propagates [`ConfigError`] from scenario validation.
pub fn scaling_study(opts: &FigureOptions) -> Result<Vec<LabeledResult>, ConfigError> {
    let mut out = Vec::new();
    for v in [VirusProfile::virus1(), VirusProfile::virus3()] {
        for size in [opts.population, 2 * opts.population] {
            let name = v.name.clone();
            let scaled_opts = FigureOptions { population: size, ..opts.clone() };
            let config = base_config(v.clone(), &scaled_opts);
            out.push(run_labeled(format!("{name} n={size}"), &config, opts)?);
        }
    }
    Ok(out)
}

/// **§6 future work** — combined mechanisms against fast Virus 3: the
/// monitoring mechanism buys time, a signature scan then halts the virus.
/// Compares baseline, monitoring alone, scan alone, and both.
///
/// # Errors
///
/// Propagates [`ConfigError`] from scenario validation.
pub fn combo_study(opts: &FigureOptions) -> Result<Vec<LabeledResult>, ConfigError> {
    let horizon = SimDuration::from_hours(25);
    let monitoring = Monitoring::with_forced_wait(SimDuration::from_mins(30));
    let scan = SignatureScan { activation_delay: SimDuration::from_hours(6) };
    let base = base_config(VirusProfile::virus3(), opts).with_horizon(horizon);
    Ok(vec![
        run_labeled("Baseline", &base, opts)?,
        run_labeled(
            "Monitoring only",
            &base.clone().with_response(ResponseConfig::none().with_monitoring(monitoring)),
            opts,
        )?,
        run_labeled(
            "Scan only",
            &base.clone().with_response(ResponseConfig::none().with_signature_scan(scan)),
            opts,
        )?,
        run_labeled(
            "Monitoring + Scan",
            &base.clone().with_response(
                ResponseConfig::none().with_monitoring(monitoring).with_signature_scan(scan),
            ),
            opts,
        )?,
    ])
}

/// **§6 future work** — the Bluetooth propagation vector the paper names
/// but does not evaluate, implemented over a random-waypoint mobility
/// field. Four arms over 72 h in a 1 km² downtown arena:
///
/// 1. a pure Bluetooth worm (Cabir-style) — baseline;
/// 2. the same worm against a perfect gateway signature scan —
///    demonstrating that reception-point mechanisms are blind to
///    proximity transfers;
/// 3. a hybrid MMS+Bluetooth worm (CommWarrior-style) against
///    blacklisting — the MMS vector is cut, the Bluetooth vector is not;
/// 4. the hybrid worm against immunization — the only §3 mechanism that
///    stops both vectors.
///
/// # Errors
///
/// Propagates [`ConfigError`] from scenario validation.
pub fn bluetooth_study(opts: &FigureOptions) -> Result<Vec<LabeledResult>, ConfigError> {
    let horizon = SimDuration::from_hours(72);
    let bt = BluetoothVector::default_class2();
    let mobility = MobilityConfig::downtown();

    let pure = base_config(VirusProfile::bluetooth_worm(), opts)
        .with_horizon(horizon)
        .with_mobility(mobility);
    let hybrid_profile = VirusProfile { bluetooth: Some(bt), ..VirusProfile::virus1() };
    let hybrid = {
        let mut c = base_config(hybrid_profile, opts).with_horizon(horizon).with_mobility(mobility);
        c.virus.name = "Hybrid MMS+BT".to_owned();
        c
    };

    Ok(vec![
        run_labeled("BT worm baseline", &pure, opts)?,
        run_labeled(
            "BT worm + perfect scan",
            &pure.clone().with_response(
                ResponseConfig::none()
                    .with_signature_scan(SignatureScan { activation_delay: SimDuration::ZERO }),
            ),
            opts,
        )?,
        run_labeled("Hybrid baseline", &hybrid, opts)?,
        run_labeled(
            "Hybrid + blacklist 10",
            &hybrid
                .clone()
                .with_response(ResponseConfig::none().with_blacklist(Blacklist { threshold: 10 })),
            opts,
        )?,
        run_labeled(
            "Hybrid + patch 24h+6h",
            &hybrid.clone().with_response(ResponseConfig::none().with_immunization(
                Immunization::uniform(SimDuration::from_hours(24), SimDuration::from_hours(6)),
            )),
            opts,
        )?,
        run_labeled(
            "Hybrid + patch 6h+1h",
            &hybrid.clone().with_response(ResponseConfig::none().with_immunization(
                Immunization::uniform(SimDuration::from_hours(6), SimDuration::from_hours(1)),
            )),
            opts,
        )?,
        run_labeled(
            "BT worm + education 0.20",
            &pure.clone().with_response(
                ResponseConfig::none().with_education(UserEducation { acceptance_scale: 0.5 }),
            ),
            opts,
        )?,
    ])
}

/// **Extension** — monitoring false positives. The paper notes the
/// blacklist "threshold should ideally be as high as possible to avoid
/// false positive activation" but models no legitimate traffic to
/// measure it. With legitimate traffic enabled (≈ 6 MMS/day per phone),
/// this study sweeps the monitoring threshold against Virus 3 and
/// exposes the containment-vs-false-positive trade-off. Read the
/// false-positive counts from each arm's `runs[i].stats`.
///
/// # Errors
///
/// Propagates [`ConfigError`] from scenario validation.
pub fn false_positive_study(opts: &FigureOptions) -> Result<Vec<LabeledResult>, ConfigError> {
    let horizon = SimDuration::from_hours(25);
    let mut out = Vec::new();
    for threshold in [2u32, 3, 5, 10] {
        let mut config = base_config(VirusProfile::virus3(), opts).with_horizon(horizon);
        config.behavior =
            crate::behavior::BehaviorConfig::with_legitimate_traffic(SimDuration::from_hours(4));
        config.response = ResponseConfig::none().with_monitoring(Monitoring {
            window: SimDuration::from_hours(1),
            threshold,
            forced_wait: SimDuration::from_mins(30),
        });
        out.push(run_labeled(format!("threshold {threshold}/h"), &config, opts)?);
    }
    Ok(out)
}

/// **Extension** — patch rollout order: the paper's uniform rollout
/// against a hubs-first rollout (highest-degree phones patched first)
/// at the same development and rollout times, for Viruses 1 and 4.
///
/// # Errors
///
/// Propagates [`ConfigError`] from scenario validation.
pub fn rollout_order_study(opts: &FigureOptions) -> Result<Vec<LabeledResult>, ConfigError> {
    let mut out = Vec::new();
    for virus in [VirusProfile::virus1(), VirusProfile::virus4()] {
        let name = virus.name.clone();
        out.push(run_labeled(format!("{name} Baseline"), &base_config(virus.clone(), opts), opts)?);
        for (label, imm) in [
            (
                "uniform",
                Immunization::uniform(SimDuration::from_hours(24), SimDuration::from_hours(24)),
            ),
            (
                "hubs-first",
                Immunization::hubs_first(SimDuration::from_hours(24), SimDuration::from_hours(24)),
            ),
        ] {
            let config = base_config(virus.clone(), opts)
                .with_response(ResponseConfig::none().with_immunization(imm));
            out.push(run_labeled(format!("{name} {label}"), &config, opts)?);
        }
    }
    Ok(out)
}

/// **§5.3 prose** — "the results of our experiments are useful for
/// locating the point of diminishing returns for each individual
/// response mechanism". This study sweeps each mechanism's headline knob
/// on a fine grid so the knee is visible:
///
/// * signature-scan delay 2–48 h (Virus 1),
/// * detection accuracy 0.50–0.995 (single-recipient fast virus),
/// * monitoring forced wait 5–120 min (Virus 3),
/// * blacklist threshold 5–60 (Virus 3).
///
/// # Errors
///
/// Propagates [`ConfigError`] from scenario validation.
pub fn diminishing_returns_study(opts: &FigureOptions) -> Result<Vec<LabeledResult>, ConfigError> {
    let mut out = Vec::new();

    for delay_h in [2u64, 4, 8, 16, 32, 48] {
        let config = base_config(VirusProfile::virus1(), opts).with_response(
            ResponseConfig::none().with_signature_scan(SignatureScan {
                activation_delay: SimDuration::from_hours(delay_h),
            }),
        );
        out.push(run_labeled(format!("scan delay {delay_h}h"), &config, opts)?);
    }

    let mut single = VirusProfile::virus3();
    single.name = "fast single-recipient".to_owned();
    for accuracy in [0.5, 0.8, 0.9, 0.95, 0.99, 0.995] {
        let mut config = base_config(single.clone(), opts)
            .with_horizon(SimDuration::from_hours(25))
            .with_response(ResponseConfig::none().with_detection(DetectionAlgorithm {
                accuracy,
                analysis_period: SimDuration::from_hours(1),
            }));
        config.detect_threshold = 5;
        out.push(run_labeled(format!("detection acc {accuracy}"), &config, opts)?);
    }

    for wait_min in [5u64, 15, 30, 60, 120] {
        let config =
            base_config(VirusProfile::virus3(), opts)
                .with_horizon(SimDuration::from_hours(25))
                .with_response(ResponseConfig::none().with_monitoring(
                    Monitoring::with_forced_wait(SimDuration::from_mins(wait_min)),
                ));
        out.push(run_labeled(format!("monitor wait {wait_min}min"), &config, opts)?);
    }

    for threshold in [5u32, 10, 20, 40, 60] {
        let config = base_config(VirusProfile::virus3(), opts)
            .with_horizon(SimDuration::from_hours(25))
            .with_response(ResponseConfig::none().with_blacklist(Blacklist { threshold }));
        out.push(run_labeled(format!("blacklist @{threshold}"), &config, opts)?);
    }

    Ok(out)
}

/// **Extension** — gateway congestion. The paper assumes infinite MMS
/// capacity; this study gives the gateway a finite throughput and races
/// Virus 3 against it. Finite capacity both delays legitimate delivery
/// (the intro's congestion concern) and — an emergent effect — throttles
/// the virus itself, since its own messages queue too.
///
/// # Errors
///
/// Propagates [`ConfigError`] from scenario validation.
pub fn congestion_study(opts: &FigureOptions) -> Result<Vec<LabeledResult>, ConfigError> {
    let horizon = SimDuration::from_hours(25);
    let mut out = vec![run_labeled(
        "infinite capacity (paper)",
        &base_config(VirusProfile::virus3(), opts).with_horizon(horizon),
        opts,
    )?];
    for capacity in [3600u64, 1200, 300] {
        let mut config = base_config(VirusProfile::virus3(), opts).with_horizon(horizon);
        config.gateway_capacity_per_hour = Some(capacity);
        out.push(run_labeled(format!("{capacity} msgs/h"), &config, opts)?);
    }
    Ok(out)
}

/// **§5.3 synthesis** — the paper's central conclusion as one table: all
/// six mechanisms (at representative settings) against all four viruses.
/// Labels are `"{virus} | {mechanism}"`, with a `"{virus} | baseline"`
/// row per virus; divide to get the effectiveness matrix.
///
/// Representative settings: scan 6 h delay, detection 0.95 accuracy,
/// education ×0.5, immunization 24 h + 6 h, monitoring 30 min wait,
/// blacklist threshold 10.
///
/// # Errors
///
/// Propagates [`ConfigError`] from scenario validation.
pub fn effectiveness_matrix(opts: &FigureOptions) -> Result<Vec<LabeledResult>, ConfigError> {
    let mechanisms: Vec<(&str, ResponseConfig)> = vec![
        (
            "scan",
            ResponseConfig::none().with_signature_scan(SignatureScan {
                activation_delay: SimDuration::from_hours(6),
            }),
        ),
        (
            "detection",
            ResponseConfig::none().with_detection(DetectionAlgorithm::with_accuracy(0.95)),
        ),
        (
            "education",
            ResponseConfig::none().with_education(UserEducation { acceptance_scale: 0.5 }),
        ),
        (
            "immunization",
            ResponseConfig::none().with_immunization(Immunization::uniform(
                SimDuration::from_hours(24),
                SimDuration::from_hours(6),
            )),
        ),
        (
            "monitoring",
            ResponseConfig::none()
                .with_monitoring(Monitoring::with_forced_wait(SimDuration::from_mins(30))),
        ),
        ("blacklist", ResponseConfig::none().with_blacklist(Blacklist { threshold: 10 })),
    ];

    let mut out = Vec::new();
    for virus in VirusProfile::all_four() {
        let name = virus.name.clone();
        out.push(run_labeled(
            format!("{name} | baseline"),
            &base_config(virus.clone(), opts),
            opts,
        )?);
        for (mech, response) in &mechanisms {
            let config = base_config(virus.clone(), opts).with_response(*response);
            out.push(run_labeled(format!("{name} | {mech}"), &config, opts)?);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Figure tests at full scale are exercised by the integration suite
    /// and the CLI; here we verify the experiment *definitions* — label
    /// sets and parameter wiring — with a minimal population.
    fn tiny() -> FigureOptions {
        FigureOptions {
            reps: 1,
            master_seed: 1,
            threads: 1,
            population: 40,
            ..FigureOptions::default()
        }
    }

    fn labels(results: &[LabeledResult]) -> Vec<&str> {
        results.iter().map(|r| r.label.as_str()).collect()
    }

    #[test]
    fn fig2_labels_match_paper() {
        // Shrink horizons via population only; the structure is what we
        // check here.
        let out = fig2_virus_scan(&tiny()).unwrap();
        assert_eq!(
            labels(&out),
            vec!["Baseline", "6-Hour Delay", "12-Hour Delay", "24-Hour Delay"]
        );
    }

    #[test]
    fn fig3_labels_match_paper() {
        let out = fig3_detection(&tiny()).unwrap();
        assert_eq!(
            labels(&out),
            vec![
                "Baseline",
                "0.99 Accuracy",
                "0.95 Accuracy",
                "0.90 Accuracy",
                "0.85 Accuracy",
                "0.80 Accuracy"
            ]
        );
    }

    #[test]
    fn fig5_labels_match_paper() {
        let out = fig5_immunization(&tiny()).unwrap();
        assert_eq!(
            labels(&out),
            vec![
                "Baseline",
                "Hours 24-25",
                "Hours 24-30",
                "Hours 24-48",
                "Hours 48-49",
                "Hours 48-54",
                "Hours 48-72"
            ]
        );
    }

    #[test]
    fn fig6_and_fig7_labels() {
        let out = fig6_monitoring(&tiny()).unwrap();
        assert_eq!(
            labels(&out),
            vec!["Baseline", "15-Minute Wait", "30-Minute Wait", "60-Minute Wait"]
        );
        let out = fig7_blacklist(&tiny()).unwrap();
        assert_eq!(
            labels(&out),
            vec!["Baseline", "10 Messages", "20 Messages", "30 Messages", "40 Messages"]
        );
    }

    #[test]
    fn scaling_study_sizes() {
        let out = scaling_study(&tiny()).unwrap();
        assert_eq!(
            labels(&out),
            vec!["Virus 1 n=40", "Virus 1 n=80", "Virus 3 n=40", "Virus 3 n=80"]
        );
    }

    #[test]
    fn combo_study_labels() {
        let out = combo_study(&tiny()).unwrap();
        assert_eq!(
            labels(&out),
            vec!["Baseline", "Monitoring only", "Scan only", "Monitoring + Scan"]
        );
    }

    #[test]
    fn bluetooth_study_labels() {
        let out = bluetooth_study(&tiny()).unwrap();
        let labels: Vec<&str> = out.iter().map(|r| r.label.as_str()).collect();
        assert_eq!(
            labels,
            vec![
                "BT worm baseline",
                "BT worm + perfect scan",
                "Hybrid baseline",
                "Hybrid + blacklist 10",
                "Hybrid + patch 24h+6h",
                "Hybrid + patch 6h+1h",
                "BT worm + education 0.20"
            ]
        );
    }

    #[test]
    fn false_positive_study_labels() {
        let out = false_positive_study(&tiny()).unwrap();
        let labels: Vec<&str> = out.iter().map(|r| r.label.as_str()).collect();
        assert_eq!(
            labels,
            vec!["threshold 2/h", "threshold 3/h", "threshold 5/h", "threshold 10/h"]
        );
        // The hair-trigger arm must record false positives somewhere.
        let fp: u64 = out[0].result.runs.iter().map(|r| r.stats.false_positive_throttles).sum();
        assert!(fp > 0, "threshold 2 with ~6 legit msgs/day must flag innocents");
    }

    #[test]
    fn rollout_order_study_labels() {
        let out = rollout_order_study(&tiny()).unwrap();
        let labels: Vec<&str> = out.iter().map(|r| r.label.as_str()).collect();
        assert_eq!(
            labels,
            vec![
                "Virus 1 Baseline",
                "Virus 1 uniform",
                "Virus 1 hubs-first",
                "Virus 4 Baseline",
                "Virus 4 uniform",
                "Virus 4 hubs-first"
            ]
        );
    }

    #[test]
    fn effectiveness_matrix_has_28_cells() {
        let out = effectiveness_matrix(&tiny()).unwrap();
        assert_eq!(out.len(), 4 * 7);
        assert!(out.iter().any(|r| r.label == "Virus 1 | baseline"));
        assert!(out.iter().any(|r| r.label == "Virus 3 | blacklist"));
    }

    #[test]
    fn congestion_study_labels_and_ordering() {
        let out = congestion_study(&tiny()).unwrap();
        let labels: Vec<&str> = out.iter().map(|r| r.label.as_str()).collect();
        assert_eq!(
            labels,
            vec!["infinite capacity (paper)", "3600 msgs/h", "1200 msgs/h", "300 msgs/h"]
        );
    }

    #[test]
    fn diminishing_returns_covers_four_mechanisms() {
        let out = diminishing_returns_study(&tiny()).unwrap();
        assert_eq!(out.len(), 6 + 6 + 5 + 5);
        assert!(out.iter().any(|r| r.label.starts_with("scan delay")));
        assert!(out.iter().any(|r| r.label.starts_with("detection acc")));
        assert!(out.iter().any(|r| r.label.starts_with("monitor wait")));
        assert!(out.iter().any(|r| r.label.starts_with("blacklist @")));
    }

    #[test]
    fn quick_options_reduce_reps() {
        assert!(FigureOptions::quick().reps < FigureOptions::default().reps);
    }
}
