//! Integration tests for the in-simulation probe layer.
//!
//! Three guarantees are checked here:
//!
//! 1. **Non-perturbation** — attaching the no-op probe is bit-identical
//!    to the un-probed path over random scenarios (proptest), for both
//!    future-event-list implementations.
//! 2. **Byte determinism** — the trace exports (Chrome trace JSON and
//!    JSONL) are byte-identical across repeated runs with the same seed
//!    and the same `FelKind`.
//! 3. **Consistency** — chain and telemetry records agree with the
//!    model's own end-of-run counters ([`RunResult`] stats).

use proptest::prelude::*;

use mpvsim::prelude::*;

/// The four paper viruses, by index, for compact proptest strategies.
fn virus(idx: usize) -> VirusProfile {
    match idx {
        0 => VirusProfile::virus1(),
        1 => VirusProfile::virus2(),
        2 => VirusProfile::virus3(),
        _ => VirusProfile::virus4(),
    }
}

/// A random but valid scenario, small enough to run in milliseconds yet
/// exercising every probe hook family: MMS traffic, scanning, monitoring
/// throttles, blacklisting and (sometimes) Bluetooth.
fn scenario_strategy() -> impl Strategy<Value = ScenarioConfig> {
    (
        0usize..4,     // virus profile
        any::<bool>(), // signature scan
        any::<bool>(), // monitoring (forced wait)
        any::<bool>(), // blacklist
        any::<bool>(), // bluetooth + mobility
        30usize..70,   // population
        4u64..16,      // horizon hours
    )
        .prop_map(|(v, scan, mon, bl, bt, n, horizon)| {
            let mut c = ScenarioConfig::baseline(virus(v));
            let mut r = ResponseConfig::none();
            if scan {
                r = r.with_signature_scan(SignatureScan {
                    activation_delay: SimDuration::from_hours(2),
                });
            }
            if mon {
                r = r.with_monitoring(Monitoring::with_forced_wait(SimDuration::from_mins(30)));
            }
            if bl {
                r = r.with_blacklist(Blacklist { threshold: 10 });
            }
            c.response = r;
            c.population = PopulationConfig {
                topology: GraphSpec::erdos_renyi(n, 6.0),
                vulnerable_fraction: 0.8,
            };
            if bt {
                c.virus.bluetooth = Some(BluetoothVector::default_class2());
                c.mobility = Some(MobilityConfig::downtown());
            }
            c.horizon = SimDuration::from_hours(horizon);
            c
        })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// The no-op probe must not perturb the trajectory in any way: the
    /// time series, traffic counters, run stats and DES metrics are all
    /// identical to the un-probed run, for every FEL implementation.
    #[test]
    fn noop_probe_is_bit_identical_to_unprobed(
        config in scenario_strategy(),
        seed in 0u64..1_000,
    ) {
        for fel in [FelKind::BinaryHeap, FelKind::Calendar] {
            let (plain, plain_metrics) =
                run_scenario_probed(&config, seed, fel, None, ProbeKind::None)
                    .expect("strategy yields valid configs");
            let (noop, noop_metrics) =
                run_scenario_probed(&config, seed, fel, None, ProbeKind::Noop)
                    .expect("strategy yields valid configs");
            prop_assert!(noop.probe.is_none(), "the no-op probe produces no output");
            prop_assert_eq!(&plain.series, &noop.series);
            prop_assert_eq!(&plain.traffic, &noop.traffic);
            prop_assert_eq!(&plain.stats, &noop.stats);
            prop_assert_eq!(plain.final_infected, noop.final_infected);
            prop_assert_eq!(plain_metrics.events_processed, noop_metrics.events_processed);
            prop_assert_eq!(
                plain_metrics.peak_pending_events,
                noop_metrics.peak_pending_events
            );
        }
    }

    /// Telemetry bins sum to exactly the counters the model reports at
    /// the end of the run, for any scenario: the probe observes every
    /// event exactly once.
    #[test]
    fn telemetry_totals_match_run_stats_for_any_scenario(
        config in scenario_strategy(),
        seed in 0u64..1_000,
    ) {
        let (run, _) = run_scenario_probed(
            &config,
            seed,
            FelKind::default(),
            None,
            ProbeKind::Telemetry,
        )
        .expect("strategy yields valid configs");
        let totals = run.telemetry().expect("telemetry probe output").totals();
        prop_assert_eq!(totals.messages_sent, run.stats.messages_sent);
        prop_assert_eq!(totals.blocked_by_scan, run.stats.blocked_by_scan);
        prop_assert_eq!(totals.blocked_by_detection, run.stats.blocked_by_detection);
        prop_assert_eq!(totals.blocked_by_blacklist, run.stats.blocked_by_blacklist);
        prop_assert_eq!(totals.throttles, run.stats.throttled_phones);
        prop_assert_eq!(totals.blacklists, run.stats.blacklisted_phones);
    }
}

/// Trace exports are byte-identical across repeated runs with the same
/// seed and FEL, and differ across seeds (the trace actually records the
/// trajectory rather than a constant).
#[test]
fn trace_export_is_byte_identical_per_seed_and_fel() {
    let mut config = ScenarioConfig::baseline(VirusProfile::virus3());
    config.population =
        PopulationConfig { topology: GraphSpec::erdos_renyi(50, 6.0), vulnerable_fraction: 0.8 };
    config.horizon = SimDuration::from_hours(8);

    let fels = [
        FelKind::BinaryHeap,
        FelKind::Calendar,
        FelKind::CalendarTuned { bucket_width_secs: 120, bucket_count: 256 },
    ];
    for fel in fels {
        let trace_of = |seed: u64| {
            let (run, _) = run_scenario_probed(&config, seed, fel, None, ProbeKind::Trace)
                .expect("valid config");
            run.probe
                .and_then(|p| match p {
                    ProbeOutput::Trace(t) => Some(t),
                    _ => None,
                })
                .expect("trace probe output")
        };
        let first = trace_of(9);
        let second = trace_of(9);
        assert_eq!(
            first.to_chrome_trace_json(),
            second.to_chrome_trace_json(),
            "same seed + same FEL must export identical Chrome trace bytes ({fel:?})"
        );
        assert_eq!(
            first.to_jsonl(),
            second.to_jsonl(),
            "same seed + same FEL must export identical JSONL bytes ({fel:?})"
        );
        let other = trace_of(10);
        assert_ne!(
            first.to_jsonl(),
            other.to_jsonl(),
            "different seeds must produce different traces ({fel:?})"
        );
    }
}

/// The transmission chain is a faithful infection genealogy: one root per
/// initial infection, every infector recorded before its victims,
/// timestamps non-decreasing, and the total matching the final count
/// (no response mechanism here, so nobody recovers).
#[test]
fn chain_record_matches_the_outcome() {
    let mut config = ScenarioConfig::baseline(VirusProfile::virus1());
    config.population =
        PopulationConfig { topology: GraphSpec::erdos_renyi(60, 8.0), vulnerable_fraction: 0.9 };
    config.horizon = SimDuration::from_hours(24);

    let (run, _) = run_scenario_probed(&config, 3, FelKind::default(), None, ProbeKind::Chain)
        .expect("valid config");
    let chain = run.probe.as_ref().and_then(ProbeOutput::as_chain).expect("chain probe output");

    assert_eq!(
        chain.total_infections(),
        run.final_infected,
        "every infection is recorded exactly once"
    );
    let roots = chain.infections.iter().filter(|e| e.infector.is_none()).count();
    assert_eq!(roots, 1, "the baseline seeds exactly one phone");
    assert!(
        chain.infections.windows(2).all(|w| w[0].t_secs <= w[1].t_secs),
        "infection events arrive in time order"
    );
    let mut infected_so_far = std::collections::HashSet::new();
    for event in &chain.infections {
        if let Some(parent) = event.infector {
            assert!(
                infected_so_far.contains(&parent),
                "infector {parent} must have been infected before its victim"
            );
        }
        infected_so_far.insert(event.phone);
    }
    assert_eq!(chain.time_to_n(1), Some(0.0), "the seed is infected at t = 0");
    assert!(chain.peak_r() > 0.0, "virus 1 with no response spreads within 24 h");
}
