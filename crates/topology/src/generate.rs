//! Graph generators.
//!
//! The paper's contact network is a power-law random graph with mean
//! contact-list size 80 over 1000 phones (generated with NGCE). The
//! substitute here is a **Chung–Lu** expected-degree model: each node gets
//! a weight drawn from a truncated Pareto distribution scaled so the mean
//! weight equals the target mean degree, and each pair `{i, j}` is
//! connected independently with probability `min(1, w_i·w_j / Σw)`. The
//! expected degree of node `i` is then ≈ `w_i`, so the degree sequence
//! inherits the Pareto (power-law) tail and the mean lands on target.
//!
//! Erdős–Rényi, Watts–Strogatz, ring-lattice and complete generators are
//! provided for topology-sensitivity ablations.

use std::collections::HashSet;

use rand::{Rng, RngExt};
use serde::{Deserialize, Serialize};

use crate::error::TopologyError;
use crate::graph::{Graph, NodeId};

/// Default power-law exponent; email-address-book studies (the paper's
/// stated analogy for contact lists) report tail exponents near 2.
pub const DEFAULT_POWER_LAW_EXPONENT: f64 = 2.1;

/// A serializable description of a graph family + parameters.
///
/// ```rust
/// use mpvsim_topology::GraphSpec;
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(1);
/// let g = GraphSpec::erdos_renyi(200, 10.0).generate(&mut rng)?;
/// assert_eq!(g.node_count(), 200);
/// # Ok::<(), mpvsim_topology::TopologyError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum GraphSpec {
    /// Chung–Lu power-law graph with the given node count, target mean
    /// degree and tail exponent.
    PowerLaw {
        /// Number of nodes.
        n: usize,
        /// Target mean degree (the paper uses 80).
        mean_degree: f64,
        /// Power-law tail exponent (> 1).
        exponent: f64,
    },
    /// Erdős–Rényi `G(n, p)` with `p` chosen to hit the target mean degree.
    ErdosRenyi {
        /// Number of nodes.
        n: usize,
        /// Target mean degree.
        mean_degree: f64,
    },
    /// Watts–Strogatz small-world graph: ring lattice with `k` neighbours
    /// per node (k even), each edge rewired with probability `beta`.
    WattsStrogatz {
        /// Number of nodes.
        n: usize,
        /// Lattice degree (even, `< n`).
        k: usize,
        /// Rewiring probability in `[0, 1]`.
        beta: f64,
    },
    /// Ring lattice: node `i` linked to its `k/2` nearest neighbours on
    /// each side.
    Ring {
        /// Number of nodes.
        n: usize,
        /// Lattice degree (even, `< n`).
        k: usize,
    },
    /// The complete graph on `n` nodes.
    Complete {
        /// Number of nodes.
        n: usize,
    },
}

impl GraphSpec {
    /// Power-law spec with the default exponent
    /// ([`DEFAULT_POWER_LAW_EXPONENT`]).
    pub fn power_law(n: usize, mean_degree: f64) -> Self {
        GraphSpec::PowerLaw { n, mean_degree, exponent: DEFAULT_POWER_LAW_EXPONENT }
    }

    /// Power-law spec with an explicit tail exponent.
    pub fn power_law_with_exponent(n: usize, mean_degree: f64, exponent: f64) -> Self {
        GraphSpec::PowerLaw { n, mean_degree, exponent }
    }

    /// Erdős–Rényi spec.
    pub fn erdos_renyi(n: usize, mean_degree: f64) -> Self {
        GraphSpec::ErdosRenyi { n, mean_degree }
    }

    /// Watts–Strogatz spec.
    pub fn watts_strogatz(n: usize, k: usize, beta: f64) -> Self {
        GraphSpec::WattsStrogatz { n, k, beta }
    }

    /// Ring-lattice spec.
    pub fn ring(n: usize, k: usize) -> Self {
        GraphSpec::Ring { n, k }
    }

    /// Complete-graph spec.
    pub fn complete(n: usize) -> Self {
        GraphSpec::Complete { n }
    }

    /// The node count this spec will produce.
    pub fn node_count(&self) -> usize {
        match *self {
            GraphSpec::PowerLaw { n, .. }
            | GraphSpec::ErdosRenyi { n, .. }
            | GraphSpec::WattsStrogatz { n, .. }
            | GraphSpec::Ring { n, .. }
            | GraphSpec::Complete { n } => n,
        }
    }

    /// Validates the parameters without generating.
    ///
    /// # Errors
    ///
    /// Returns the violation a call to [`GraphSpec::generate`] would hit.
    pub fn validate(&self) -> Result<(), TopologyError> {
        let n = self.node_count();
        if n == 0 {
            return Err(TopologyError::EmptyPopulation);
        }
        match *self {
            GraphSpec::PowerLaw { mean_degree, exponent, .. } => {
                check_mean_degree(n, mean_degree)?;
                if exponent <= 1.0 || !exponent.is_finite() {
                    return Err(TopologyError::InvalidParameter(format!(
                        "power-law exponent must be finite and > 1, got {exponent}"
                    )));
                }
                Ok(())
            }
            GraphSpec::ErdosRenyi { mean_degree, .. } => check_mean_degree(n, mean_degree),
            GraphSpec::WattsStrogatz { k, beta, .. } => {
                check_lattice_degree(n, k)?;
                if !(0.0..=1.0).contains(&beta) || !beta.is_finite() {
                    return Err(TopologyError::InvalidProbability { value: beta, name: "beta" });
                }
                Ok(())
            }
            GraphSpec::Ring { k, .. } => check_lattice_degree(n, k),
            GraphSpec::Complete { .. } => Ok(()),
        }
    }

    /// Generates a graph from this spec using `rng`.
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError`] when the parameters are invalid (see
    /// [`GraphSpec::validate`]).
    pub fn generate<R: Rng + ?Sized>(&self, rng: &mut R) -> Result<Graph, TopologyError> {
        self.validate()?;
        let g = match *self {
            GraphSpec::PowerLaw { n, mean_degree, exponent } => {
                chung_lu(n, mean_degree, exponent, rng)
            }
            GraphSpec::ErdosRenyi { n, mean_degree } => erdos_renyi(n, mean_degree, rng),
            GraphSpec::WattsStrogatz { n, k, beta } => watts_strogatz(n, k, beta, rng),
            GraphSpec::Ring { n, k } => ring_lattice(n, k),
            GraphSpec::Complete { n } => complete(n),
        };
        debug_assert!(g.validate().is_ok());
        Ok(g)
    }
}

fn check_mean_degree(n: usize, mean_degree: f64) -> Result<(), TopologyError> {
    if !mean_degree.is_finite() || mean_degree < 0.0 || mean_degree > (n - 1) as f64 {
        Err(TopologyError::InvalidMeanDegree { n, mean_degree })
    } else {
        Ok(())
    }
}

fn check_lattice_degree(n: usize, k: usize) -> Result<(), TopologyError> {
    if !k.is_multiple_of(2) {
        Err(TopologyError::InvalidParameter(format!("lattice degree k = {k} must be even")))
    } else if k >= n {
        Err(TopologyError::InvalidParameter(format!("lattice degree k = {k} must be < n = {n}")))
    } else {
        Ok(())
    }
}

/// Chung–Lu expected-degree power-law graph.
fn chung_lu<R: Rng + ?Sized>(n: usize, mean_degree: f64, exponent: f64, rng: &mut R) -> Graph {
    let mut g = Graph::with_nodes(n);
    if mean_degree == 0.0 || n < 2 {
        return g;
    }
    // Pareto(shape = exponent - 1, min = 1) weights.
    let shape = exponent - 1.0;
    let mut weights: Vec<f64> = (0..n)
        .map(|_| {
            let u: f64 = rng.random();
            (1.0 - u).powf(-1.0 / shape)
        })
        .collect();
    // Scale to the target mean.
    let mean_w: f64 = weights.iter().sum::<f64>() / n as f64;
    let scale = mean_degree / mean_w;
    for w in &mut weights {
        *w *= scale;
    }
    // Truncate the heaviest weights so no single pair dominates with
    // probability 1 everywhere (w_i w_j / S <= 1 for the bulk).
    let total: f64 = weights.iter().sum();
    let cap = total.sqrt();
    for w in &mut weights {
        if *w > cap {
            *w = cap;
        }
    }
    let total: f64 = weights.iter().sum();
    // Clipping `min(1, ·)` plus the cap removes probability mass, so the
    // raw Chung–Lu rule undershoots the target mean degree. Binary-search a
    // global factor c in p_ij = min(1, c·w_i·w_j/Σw) so that the *expected*
    // mean degree equals the target.
    let expected_degree_sum = |c: f64| -> f64 {
        let mut s = 0.0;
        for i in 0..n {
            for j in (i + 1)..n {
                s += (c * weights[i] * weights[j] / total).min(1.0);
            }
        }
        2.0 * s
    };
    let target_sum = mean_degree * n as f64;
    let (mut lo, mut hi) = (0.0f64, 1.0f64);
    while expected_degree_sum(hi) < target_sum && hi < 1e6 {
        lo = hi;
        hi *= 2.0;
    }
    for _ in 0..30 {
        let mid = 0.5 * (lo + hi);
        if expected_degree_sum(mid) < target_sum {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    let c = 0.5 * (lo + hi);
    for i in 0..n {
        for j in (i + 1)..n {
            let p = (c * weights[i] * weights[j] / total).min(1.0);
            if p > 0.0 && rng.random::<f64>() < p {
                g.add_edge(NodeId(i), NodeId(j));
            }
        }
    }
    g
}

/// Erdős–Rényi `G(n, p)` with `p = mean_degree / (n - 1)`.
fn erdos_renyi<R: Rng + ?Sized>(n: usize, mean_degree: f64, rng: &mut R) -> Graph {
    let mut g = Graph::with_nodes(n);
    if n < 2 {
        return g;
    }
    let p = mean_degree / (n - 1) as f64;
    for i in 0..n {
        for j in (i + 1)..n {
            if rng.random::<f64>() < p {
                g.add_edge(NodeId(i), NodeId(j));
            }
        }
    }
    g
}

/// Ring lattice: `i ~ i ± 1..=k/2 (mod n)`.
fn ring_lattice(n: usize, k: usize) -> Graph {
    let mut g = Graph::with_nodes(n);
    for i in 0..n {
        for d in 1..=(k / 2) {
            let j = (i + d) % n;
            g.add_edge(NodeId(i), NodeId(j));
        }
    }
    g
}

/// Watts–Strogatz: ring lattice, then each lattice edge `(i, i+d)` is
/// rewired to `(i, random)` with probability `beta`, skipping rewires that
/// would create self-loops or parallel edges.
fn watts_strogatz<R: Rng + ?Sized>(n: usize, k: usize, beta: f64, rng: &mut R) -> Graph {
    // Edge set as ordered pairs (low, high) for cheap membership tests.
    let mut edges: HashSet<(usize, usize)> = HashSet::new();
    let norm = |a: usize, b: usize| if a < b { (a, b) } else { (b, a) };
    for i in 0..n {
        for d in 1..=(k / 2) {
            edges.insert(norm(i, (i + d) % n));
        }
    }
    // Rewire in deterministic lattice order.
    for i in 0..n {
        for d in 1..=(k / 2) {
            let j = (i + d) % n;
            let key = norm(i, j);
            if !edges.contains(&key) {
                continue; // already rewired away by an earlier step
            }
            if rng.random::<f64>() < beta {
                let target = rng.random_range(0..n);
                let new_key = norm(i, target);
                if target != i && !edges.contains(&new_key) {
                    edges.remove(&key);
                    edges.insert(new_key);
                }
            }
        }
    }
    let mut g = Graph::with_nodes(n);
    let mut sorted: Vec<_> = edges.into_iter().collect();
    sorted.sort_unstable(); // deterministic insertion order
    for (a, b) in sorted {
        g.add_edge(NodeId(a), NodeId(b));
    }
    g
}

/// The complete graph.
fn complete(n: usize) -> Graph {
    let mut g = Graph::with_nodes(n);
    for i in 0..n {
        for j in (i + 1)..n {
            g.add_edge(NodeId(i), NodeId(j));
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    #[test]
    fn power_law_hits_target_mean_degree() {
        let g = GraphSpec::power_law(1000, 80.0).generate(&mut rng(1)).unwrap();
        assert_eq!(g.node_count(), 1000);
        let mean = g.mean_degree();
        assert!((mean - 80.0).abs() < 8.0, "mean degree {mean} not ≈ 80");
        assert!(g.validate().is_ok());
    }

    #[test]
    fn power_law_has_heavy_tail() {
        let g = GraphSpec::power_law(1000, 20.0).generate(&mut rng(2)).unwrap();
        let max_deg = g.nodes().map(|v| g.degree(v)).max().unwrap();
        let mean = g.mean_degree();
        // A power-law graph's max degree is far above the mean; an ER
        // graph with the same mean would have max ≈ mean + 5σ ≈ 2× mean.
        assert!(
            (max_deg as f64) > 3.0 * mean,
            "max degree {max_deg} too close to mean {mean} for a heavy tail"
        );
    }

    #[test]
    fn erdos_renyi_hits_target_mean_degree() {
        let g = GraphSpec::erdos_renyi(1000, 12.0).generate(&mut rng(3)).unwrap();
        let mean = g.mean_degree();
        assert!((mean - 12.0).abs() < 1.5, "mean degree {mean} not ≈ 12");
    }

    #[test]
    fn ring_is_exactly_regular() {
        let g = GraphSpec::ring(20, 4).generate(&mut rng(4)).unwrap();
        for v in g.nodes() {
            assert_eq!(g.degree(v), 4);
        }
        assert_eq!(g.edge_count(), 40);
    }

    #[test]
    fn complete_graph_edge_count() {
        let g = GraphSpec::complete(10).generate(&mut rng(5)).unwrap();
        assert_eq!(g.edge_count(), 45);
        for v in g.nodes() {
            assert_eq!(g.degree(v), 9);
        }
    }

    #[test]
    fn watts_strogatz_preserves_edge_count() {
        let g = GraphSpec::watts_strogatz(100, 6, 0.3).generate(&mut rng(6)).unwrap();
        // Rewiring moves edges but (apart from skipped conflicts) does not
        // remove them; edge count stays within a few of the lattice count.
        let lattice_edges = 100 * 3;
        assert!(g.edge_count() <= lattice_edges);
        assert!(g.edge_count() >= lattice_edges - 20);
        assert!(g.validate().is_ok());
    }

    #[test]
    fn watts_strogatz_beta_zero_is_lattice() {
        let ws = GraphSpec::watts_strogatz(30, 4, 0.0).generate(&mut rng(7)).unwrap();
        let ring = GraphSpec::ring(30, 4).generate(&mut rng(8)).unwrap();
        let mut a: Vec<_> = ws.edges().collect();
        let mut b: Vec<_> = ring.edges().collect();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let spec = GraphSpec::power_law(300, 15.0);
        let g1 = spec.generate(&mut rng(42)).unwrap();
        let g2 = spec.generate(&mut rng(42)).unwrap();
        let e1: Vec<_> = g1.edges().collect();
        let e2: Vec<_> = g2.edges().collect();
        assert_eq!(e1, e2);
        let g3 = spec.generate(&mut rng(43)).unwrap();
        assert_ne!(e1, g3.edges().collect::<Vec<_>>());
    }

    #[test]
    fn zero_mean_degree_gives_empty_graph() {
        let g = GraphSpec::erdos_renyi(50, 0.0).generate(&mut rng(9)).unwrap();
        assert_eq!(g.edge_count(), 0);
        let g = GraphSpec::power_law(50, 0.0).generate(&mut rng(10)).unwrap();
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn invalid_specs_rejected() {
        assert_eq!(GraphSpec::power_law(0, 5.0).validate(), Err(TopologyError::EmptyPopulation));
        assert!(matches!(
            GraphSpec::erdos_renyi(10, 20.0).validate(),
            Err(TopologyError::InvalidMeanDegree { .. })
        ));
        assert!(matches!(
            GraphSpec::erdos_renyi(10, f64::NAN).validate(),
            Err(TopologyError::InvalidMeanDegree { .. })
        ));
        assert!(matches!(
            GraphSpec::watts_strogatz(10, 3, 0.5).validate(),
            Err(TopologyError::InvalidParameter(_))
        ));
        assert!(matches!(
            GraphSpec::watts_strogatz(10, 4, 1.5).validate(),
            Err(TopologyError::InvalidProbability { .. })
        ));
        assert!(matches!(
            GraphSpec::ring(10, 10).validate(),
            Err(TopologyError::InvalidParameter(_))
        ));
        assert!(matches!(
            GraphSpec::power_law_with_exponent(10, 3.0, 1.0).validate(),
            Err(TopologyError::InvalidParameter(_))
        ));
    }

    #[test]
    fn single_node_specs_degenerate_gracefully() {
        let g = GraphSpec::complete(1).generate(&mut rng(11)).unwrap();
        assert_eq!(g.node_count(), 1);
        assert_eq!(g.edge_count(), 0);
        let g = GraphSpec::erdos_renyi(1, 0.0).generate(&mut rng(12)).unwrap();
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn node_count_accessor() {
        assert_eq!(GraphSpec::power_law(7, 2.0).node_count(), 7);
        assert_eq!(GraphSpec::complete(3).node_count(), 3);
        assert_eq!(GraphSpec::ring(9, 2).node_count(), 9);
        assert_eq!(GraphSpec::watts_strogatz(11, 2, 0.1).node_count(), 11);
        assert_eq!(GraphSpec::erdos_renyi(13, 2.0).node_count(), 13);
    }
}
