//! The six response mechanisms of §3, as composable configuration.
//!
//! Each mechanism is optional and they compose freely, which also covers
//! the paper's future-work item ("evaluation of combinations of reaction
//! mechanisms"). Mechanisms act at three points of the propagation
//! process:
//!
//! * **Reception** — [`SignatureScan`], [`DetectionAlgorithm`] (in the
//!   provider's MMS gateways);
//! * **Infection** — [`UserEducation`], [`Immunization`] (on the phones);
//! * **Dissemination** — [`Monitoring`], [`Blacklist`] (provider-side
//!   suppression of infected senders).
//!
//! Scan, detection and immunization timers start when "the virus reaches
//! a detectable level" — in this model, when the gateways have observed
//! [`crate::ScenarioConfig::detect_threshold`] infected messages.

use serde::{Deserialize, Serialize};

use mpvsim_des::{SimDuration, SimTime};

/// Gateway virus scan (§3.1): once the new signature is deployed —
/// `activation_delay` after detectability — every infected MMS in transit
/// is recognized and dropped.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SignatureScan {
    /// Time to identify the virus and push its signature to the gateways,
    /// measured from the detectability instant. The paper sweeps
    /// 6 / 12 / 24 hours.
    pub activation_delay: SimDuration,
}

/// Gateway detection algorithm (§3.1): after an analysis period it
/// recognizes each subsequent infected MMS with probability `accuracy`
/// (the paper sweeps 0.80–0.99); recognized messages are dropped.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DetectionAlgorithm {
    /// Probability that an infected message is caught once active.
    pub accuracy: f64,
    /// Training time after detectability before the algorithm is active.
    pub analysis_period: SimDuration,
}

impl DetectionAlgorithm {
    /// Detection with the given accuracy and the default 6 h analysis
    /// period.
    pub fn with_accuracy(accuracy: f64) -> Self {
        DetectionAlgorithm { accuracy, analysis_period: SimDuration::from_hours(6) }
    }
}

/// Phone user education (§3.2): scales the acceptance factor (and thereby
/// the eventual acceptance probability) down. `scale = 0.5` reproduces
/// the paper's "total probability of acceptance reduced to 0.20",
/// `scale = 0.25` its 0.10 case.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct UserEducation {
    /// Multiplier applied to the acceptance factor, in `[0, 1]`.
    pub acceptance_scale: f64,
}

/// Immunization via software patches (§3.2): `development_time` after
/// detectability, the patch starts rolling out; each phone receives it at
/// a uniformly random instant within `rollout_duration`. A patched
/// healthy phone becomes immune; a patched infected phone stops
/// propagating.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Immunization {
    /// Time to develop the patch, from detectability (paper: 24 / 48 h).
    pub development_time: SimDuration,
    /// Time to deploy the patch to the whole population (paper:
    /// 1 / 6 / 24 h; shorter = more distribution servers).
    pub rollout_duration: SimDuration,
    /// How patch-arrival instants are assigned within the rollout window.
    #[serde(default)]
    pub order: RolloutOrder,
}

/// The order in which phones receive the patch during the rollout.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum RolloutOrder {
    /// Each phone's arrival instant is uniformly random within the
    /// window (the paper's model: "rolled out to the entire phone
    /// population uniformly over a period of time").
    #[default]
    Uniform,
    /// Hubs first: phones receive the patch in decreasing contact-list
    /// size, evenly spaced over the window. A classic epidemic-control
    /// heuristic on power-law networks — protect the super-spreaders
    /// before the leaves.
    HubsFirst,
}

impl Immunization {
    /// Uniform rollout (the paper's semantics).
    pub fn uniform(development_time: SimDuration, rollout_duration: SimDuration) -> Self {
        Immunization { development_time, rollout_duration, order: RolloutOrder::Uniform }
    }

    /// Hubs-first rollout (extension).
    pub fn hubs_first(development_time: SimDuration, rollout_duration: SimDuration) -> Self {
        Immunization { development_time, rollout_duration, order: RolloutOrder::HubsFirst }
    }
}

/// Anomaly monitoring (§3.3): when a phone sends more than `threshold`
/// MMS messages within the sliding `window`, it is flagged and a forced
/// minimum wait is imposed between its subsequent outgoing messages.
///
/// The defaults (5 messages within a sliding hour) encode "a threshold
/// based on normal expected usage": Viruses 1 and 4 emit ≈ 1 message/hour
/// and are never flagged, while Virus 3's ~60/hour trips the monitor
/// within minutes. Virus 2 bursts past the threshold but is unaffected
/// anyway — its 30-per-day quota, not the forced wait, bounds its daily
/// contact-list coverage — reproducing the paper's finding that
/// monitoring only helps against the aggressive random dialer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Monitoring {
    /// Sliding observation window.
    pub window: SimDuration,
    /// Message count within the window above which a phone is flagged.
    pub threshold: u32,
    /// Forced minimum wait between outgoing messages of a flagged phone
    /// (paper sweeps 15 / 30 / 60 minutes).
    pub forced_wait: SimDuration,
}

impl Monitoring {
    /// Monitoring with the paper-calibrated window/threshold and the
    /// given forced wait.
    pub fn with_forced_wait(forced_wait: SimDuration) -> Self {
        Monitoring { window: SimDuration::from_hours(1), threshold: 5, forced_wait }
    }
}

/// Blacklisting (§3.3): once the provider has flagged more than
/// `threshold` suspected-infected messages from a phone, all its outgoing
/// MMS service is stopped. Invalid random dials count — the gateway sees
/// the attempt — which is why a threshold of 30 against random-dialing
/// Virus 3 behaves like a threshold of 10 against a contact-list virus.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Blacklist {
    /// Suspected-infected message count that triggers the blacklist
    /// (paper sweeps 10 / 20 / 30 / 40).
    pub threshold: u32,
}

/// The full, composable response configuration. `ResponseConfig::none()`
/// is the baseline (no mechanisms).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct ResponseConfig {
    /// Gateway signature scan, if deployed.
    pub signature_scan: Option<SignatureScan>,
    /// Gateway detection algorithm, if deployed.
    pub detection: Option<DetectionAlgorithm>,
    /// User education, if conducted.
    pub education: Option<UserEducation>,
    /// Immunization patching, if available.
    pub immunization: Option<Immunization>,
    /// Outgoing-volume monitoring, if enabled.
    pub monitoring: Option<Monitoring>,
    /// Blacklisting, if enabled.
    pub blacklist: Option<Blacklist>,
}

impl ResponseConfig {
    /// No response mechanisms: the baseline scenarios of §5.1.
    pub fn none() -> Self {
        ResponseConfig::default()
    }

    /// Builder-style: adds a signature scan.
    pub fn with_signature_scan(mut self, s: SignatureScan) -> Self {
        self.signature_scan = Some(s);
        self
    }

    /// Builder-style: adds a detection algorithm.
    pub fn with_detection(mut self, d: DetectionAlgorithm) -> Self {
        self.detection = Some(d);
        self
    }

    /// Builder-style: adds user education.
    pub fn with_education(mut self, e: UserEducation) -> Self {
        self.education = Some(e);
        self
    }

    /// Builder-style: adds immunization.
    pub fn with_immunization(mut self, i: Immunization) -> Self {
        self.immunization = Some(i);
        self
    }

    /// Builder-style: adds monitoring.
    pub fn with_monitoring(mut self, m: Monitoring) -> Self {
        self.monitoring = Some(m);
        self
    }

    /// Builder-style: adds blacklisting.
    pub fn with_blacklist(mut self, b: Blacklist) -> Self {
        self.blacklist = Some(b);
        self
    }

    /// True when no mechanism is configured.
    pub fn is_baseline(&self) -> bool {
        self.signature_scan.is_none()
            && self.detection.is_none()
            && self.education.is_none()
            && self.immunization.is_none()
            && self.monitoring.is_none()
            && self.blacklist.is_none()
    }

    /// Validates all configured mechanisms.
    ///
    /// # Errors
    ///
    /// Returns a message describing the first invalid parameter.
    pub fn validate(&self) -> Result<(), String> {
        if let Some(d) = self.detection {
            if !(0.0..=1.0).contains(&d.accuracy) || !d.accuracy.is_finite() {
                return Err(format!("detection accuracy {} must be in [0, 1]", d.accuracy));
            }
        }
        if let Some(e) = self.education {
            if !(0.0..=1.0).contains(&e.acceptance_scale) || !e.acceptance_scale.is_finite() {
                return Err(format!(
                    "education acceptance_scale {} must be in [0, 1]",
                    e.acceptance_scale
                ));
            }
        }
        if let Some(m) = self.monitoring {
            if m.window.is_zero() {
                return Err("monitoring window must be positive".to_owned());
            }
            if m.threshold == 0 {
                return Err("monitoring threshold must be at least 1".to_owned());
            }
        }
        if let Some(b) = self.blacklist {
            if b.threshold == 0 {
                return Err("blacklist threshold must be at least 1".to_owned());
            }
        }
        Ok(())
    }
}

/// Runtime activation state for the detectability-clocked mechanisms,
/// resolved once the virus crosses the detectable level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ActivationTimes {
    /// When the gateways first saw enough infected traffic.
    pub detected_at: Option<SimTime>,
    /// When the signature scan starts dropping everything.
    pub scan_active_at: Option<SimTime>,
    /// When the detection algorithm finishes its analysis period.
    pub detection_active_at: Option<SimTime>,
    /// When the patch rollout begins.
    pub rollout_starts_at: Option<SimTime>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_is_empty() {
        let r = ResponseConfig::none();
        assert!(r.is_baseline());
        assert!(r.validate().is_ok());
    }

    #[test]
    fn builders_compose() {
        let r = ResponseConfig::none()
            .with_signature_scan(SignatureScan { activation_delay: SimDuration::from_hours(6) })
            .with_monitoring(Monitoring::with_forced_wait(SimDuration::from_mins(15)));
        assert!(!r.is_baseline());
        assert!(r.signature_scan.is_some());
        assert!(r.monitoring.is_some());
        assert!(r.blacklist.is_none());
        assert!(r.validate().is_ok());
    }

    #[test]
    fn monitoring_defaults_spare_slow_viruses_and_catch_fast_ones() {
        let m = Monitoring::with_forced_wait(SimDuration::from_mins(30));
        assert_eq!(m.window, SimDuration::from_hours(1));
        // Viruses 1 and 4 emit ≈ 1 message/hour — below the threshold;
        // Virus 3's ~60/hour crosses it within minutes.
        assert!(m.threshold >= 3 && m.threshold < 30);
    }

    #[test]
    fn detection_accuracy_validated() {
        let r = ResponseConfig::none().with_detection(DetectionAlgorithm::with_accuracy(1.5));
        assert!(r.validate().is_err());
        let r = ResponseConfig::none().with_detection(DetectionAlgorithm::with_accuracy(0.95));
        assert!(r.validate().is_ok());
    }

    #[test]
    fn education_scale_validated() {
        let r = ResponseConfig::none().with_education(UserEducation { acceptance_scale: -0.1 });
        assert!(r.validate().is_err());
        let r = ResponseConfig::none().with_education(UserEducation { acceptance_scale: 0.5 });
        assert!(r.validate().is_ok());
    }

    #[test]
    fn zero_thresholds_rejected() {
        let r = ResponseConfig::none().with_blacklist(Blacklist { threshold: 0 });
        assert!(r.validate().is_err());
        let r = ResponseConfig::none().with_monitoring(Monitoring {
            window: SimDuration::ZERO,
            threshold: 5,
            forced_wait: SimDuration::from_mins(15),
        });
        assert!(r.validate().is_err());
        let r = ResponseConfig::none().with_monitoring(Monitoring {
            window: SimDuration::from_hours(1),
            threshold: 0,
            forced_wait: SimDuration::from_mins(15),
        });
        assert!(r.validate().is_err());
    }

    #[test]
    fn detection_constructor_default_analysis() {
        let d = DetectionAlgorithm::with_accuracy(0.9);
        assert_eq!(d.analysis_period, SimDuration::from_hours(6));
        assert_eq!(d.accuracy, 0.9);
    }

    #[test]
    fn activation_times_default_unset() {
        let a = ActivationTimes::default();
        assert!(a.detected_at.is_none());
        assert!(a.scan_active_at.is_none());
    }
}
