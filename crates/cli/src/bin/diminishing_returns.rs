//! Deprecated shim: forwards to `mpvsim study diminishing_returns`.
fn main() {
    mpvsim_cli::commands::deprecated_shim("diminishing_returns");
}
