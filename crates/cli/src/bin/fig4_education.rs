//! Regenerates Figure 4: phone user education for all four viruses.
fn main() {
    mpvsim_cli::figure_main(
        "Figure 4 — Phone User Education: Effective for All Viruses",
        mpvsim_core::figures::fig4_education,
    );
}
