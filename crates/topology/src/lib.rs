//! # mpvsim-topology — contact-network generation and analysis
//!
//! The DSN 2007 mobile-phone-virus paper wires its 1000-phone population
//! with reciprocal contact lists drawn from a **power-law random graph**
//! (generated with the NGCE package, tuned to a mean contact-list size of
//! 80). This crate is the NGCE substitute: it generates undirected simple
//! graphs from several families and provides the structural analysis used
//! to validate them.
//!
//! * [`Graph`] — an undirected simple graph (no self-loops, no parallel
//!   edges), which is exactly the "reciprocal contact list" structure the
//!   paper requires.
//! * [`GraphSpec`] — serializable configuration for a generator family:
//!   power-law (Chung–Lu), Erdős–Rényi, Watts–Strogatz, ring lattice,
//!   complete.
//! * [`analysis`] — degree statistics, connectivity, clustering and a
//!   log–log tail-slope estimate to confirm power-law shape.
//!
//! ```rust
//! use mpvsim_topology::{GraphSpec, analysis};
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let spec = GraphSpec::power_law(1000, 80.0);
//! let mut rng = StdRng::seed_from_u64(7);
//! let g = spec.generate(&mut rng).expect("valid spec");
//! let stats = analysis::degree_stats(&g);
//! assert!((stats.mean - 80.0).abs() < 8.0, "mean degree ≈ 80");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod csr;
pub mod error;
pub mod generate;
pub mod graph;
pub mod io;

pub use csr::CsrGraph;
pub use error::TopologyError;
pub use generate::GraphSpec;
pub use graph::{Graph, NodeId};
