//! # mpvsim-mobility — random-waypoint mobility and proximity detection
//!
//! The DSN 2007 paper closes by proposing that "this same virus
//! propagation modeling approach can also be used to evaluate response
//! mechanisms for mobile phone viruses that spread through means other
//! than MMS messages, such as viruses that spread using the Bluetooth
//! interface". Bluetooth spread is proximity-bound: a phone can only
//! infect phones within radio range, and range membership changes as
//! people move.
//!
//! This crate supplies that substrate:
//!
//! * [`Arena`] — a rectangular 2-D world with positions in meters;
//! * [`RandomWaypoint`] — the standard random-waypoint mobility process
//!   (pick a destination uniformly at random, walk at a uniformly drawn
//!   speed, pause, repeat) driven in fixed time steps;
//! * [`SpatialGrid`] — a uniform-grid spatial index answering
//!   "which nodes are within radius `r`" in O(occupied cells) per query;
//! * [`MobilityField`] — the assembled population of moving nodes with
//!   proximity-contact extraction.
//!
//! ```rust
//! use mpvsim_mobility::{Arena, MobilityField, WaypointParams};
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let arena = Arena::new(1000.0, 1000.0).unwrap();
//! let params = WaypointParams::pedestrian();
//! let mut rng = StdRng::seed_from_u64(1);
//! let mut field = MobilityField::new(arena, 50, params, &mut rng);
//! field.step(60.0, &mut rng); // one minute of movement
//! let contacts = field.contacts_within(10.0); // Bluetooth-class range
//! for (a, b) in contacts {
//!     assert!(field.position(a).distance(field.position(b)) <= 10.0);
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arena;
pub mod field;
pub mod grid;
pub mod waypoint;

pub use arena::{Arena, Point};
pub use field::MobilityField;
pub use grid::SpatialGrid;
pub use waypoint::{RandomWaypoint, WaypointParams};
