//! # mpvsim-cli — the unified `mpvsim` binary
//!
//! One binary drives every figure, prose claim and extension study via
//! the [`mpvsim_core::studies`] registry, plus the claim scorecard, the
//! ablations, the perf suite and the resumable sweep orchestrator:
//!
//! ```text
//! cargo run --release -p mpvsim-cli --bin mpvsim -- list
//! cargo run --release -p mpvsim-cli --bin mpvsim -- study fig1_baseline --reps 10
//! cargo run --release -p mpvsim-cli --bin mpvsim -- sweep run --dir out --quick
//! ```
//!
//! Study runs print, for each curve: the replication summary, an ASCII
//! chart of the mean infection trajectories, and a CSV block for external
//! plotting. The historical per-figure binaries (`fig1_baseline`, ...)
//! still exist as deprecated shims that forward to the dispatcher in
//! [`commands`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod commands;
pub mod perfsuite;

use std::fmt::Write as _;
use std::path::PathBuf;

use mpvsim_core::figures::{FigureOptions, LabeledResult};
use mpvsim_core::{LayoutKind, MechanismTelemetry, ProbeKind};
use mpvsim_des::{FanoutObserver, FelKind, JsonlObserver, ObserverHandle, ProgressObserver};
use mpvsim_stats::render::{ascii_chart, to_csv};
use mpvsim_stats::TimeSeries;

/// The shared flag table: `(flag, value placeholder, help)`. The usage
/// string (and therefore every binary's `--help`-style error output) is
/// generated from this single source of truth, so a new flag cannot be
/// added without documenting it.
const FLAGS: &[(&str, &str, &str)] = &[
    ("--reps", "N", "replications per scenario (default 10)"),
    ("--seed", "S", "master seed; replication r derives from (S, r) (default 2007)"),
    ("--threads", "T", "worker threads; 0 = auto-detect hardware parallelism (default 4)"),
    ("--population", "P", "population size (default 1000)"),
    ("--quick", "", "smoke-test scale: 3 replications"),
    ("--progress", "", "per-replication progress on stderr"),
    ("--metrics", "PATH", "write per-replication JSONL metrics to PATH"),
    ("--json", "PATH", "archive full results (labels, aggregates, runs) as JSON"),
    ("--probe", "KIND", "attach a probe to every replication: noop|chain|trace|telemetry"),
    ("--fel", "KIND", "future-event-list backend: binary-heap|calendar (default binary-heap)"),
    ("--layout", "KIND", "per-replication state-array layout: fresh|arena (default fresh)"),
    ("--shards", "K", "intra-replication shards; 1 = sequential engine (default 1)"),
];

/// The usage text generated from the flag table: a one-line synopsis plus
/// one description line per flag.
pub fn usage() -> String {
    let mut out = String::from("usage:");
    for (flag, value, _) in FLAGS {
        if value.is_empty() {
            let _ = write!(out, " [{flag}]");
        } else {
            let _ = write!(out, " [{flag} {value}]");
        }
    }
    out.push('\n');
    for (flag, value, help) in FLAGS {
        let _ = writeln!(out, "  {:<20} {help}", format!("{flag} {value}"));
    }
    out
}

/// Parsed command line: the experiment knobs plus output destinations.
#[derive(Debug, Clone)]
pub struct CliOptions {
    /// Replications, seed, threads, population, observer.
    pub figure: FigureOptions,
    /// Write the full results (labels, aggregates, per-replication stats)
    /// as JSON to this path for archival / external analysis.
    pub json_out: Option<PathBuf>,
    /// Report per-replication progress on stderr (`--progress`).
    pub progress: bool,
    /// Write per-replication JSONL metrics here (`--metrics PATH`).
    pub metrics_out: Option<PathBuf>,
}

/// One of the experiment flags shared by every command that runs
/// scenarios (`study`, `all`, `trace`, `sweep run`, `serve`, ...),
/// recognized and applied by [`apply_shared_flag`]. Callers that need to
/// reject or remap a flag (e.g. `sweep resume` refuses `--reps` because
/// the manifest fixes it) match on the returned variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SharedFlag {
    /// `--reps N` — replications per scenario.
    Reps,
    /// `--seed S` — master seed.
    Seed,
    /// `--threads T` — worker threads (0 = auto-detect).
    Threads,
    /// `--population P` — population size.
    Population,
    /// `--probe KIND` — per-replication probe.
    Probe,
    /// `--fel KIND` — future-event-list backend.
    Fel,
    /// `--layout KIND` — per-replication state-array layout.
    Layout,
    /// `--shards K` — intra-replication shard count (1 = sequential).
    Shards,
}

/// Applies one shared experiment flag to `opts`, pulling its value from
/// `next`. This is the single implementation behind `mpvsim study`,
/// `mpvsim sweep run`, `mpvsim trace`, `mpvsim serve`, ... — so
/// `--probe`, `--threads` and `--fel` cannot drift between commands.
///
/// Returns `Ok(Some(flag))` when `flag` was a shared flag and was
/// applied, `Ok(None)` when it is not a shared flag (the caller handles
/// its command-specific flags next).
///
/// `--threads 0` resolves to the available hardware parallelism.
///
/// # Errors
///
/// Returns a bare message (no usage text — the caller appends its own)
/// when the value is missing or malformed.
pub fn apply_shared_flag(
    flag: &str,
    next: &mut dyn FnMut() -> Option<String>,
    opts: &mut FigureOptions,
) -> Result<Option<SharedFlag>, String> {
    let which = match flag {
        "--reps" => SharedFlag::Reps,
        "--seed" => SharedFlag::Seed,
        "--threads" => SharedFlag::Threads,
        "--population" => SharedFlag::Population,
        "--probe" => SharedFlag::Probe,
        "--fel" => SharedFlag::Fel,
        "--layout" => SharedFlag::Layout,
        "--shards" => SharedFlag::Shards,
        _ => return Ok(None),
    };
    let value = next().ok_or_else(|| format!("{flag} needs a value"))?;
    match which {
        SharedFlag::Probe => {
            opts.engine.probe = ProbeKind::from_name(&value).ok_or_else(|| {
                let names: Vec<&str> = ProbeKind::all().iter().map(|k| k.name()).collect();
                format!("unknown probe {value:?} (one of: {})", names.join(", "))
            })?;
        }
        SharedFlag::Fel => {
            opts.engine.fel = FelKind::from_name(&value).ok_or_else(|| {
                format!("unknown FEL backend {value:?} (one of: binary-heap, calendar)")
            })?;
        }
        SharedFlag::Layout => {
            opts.engine.layout = LayoutKind::from_name(&value)
                .ok_or_else(|| format!("unknown layout {value:?} (one of: fresh, arena)"))?;
        }
        numeric => {
            let parsed: u64 =
                value.parse().map_err(|_| format!("{flag} value {value:?} is not a number"))?;
            match numeric {
                SharedFlag::Reps => opts.reps = parsed,
                SharedFlag::Seed => opts.master_seed = parsed,
                SharedFlag::Threads => {
                    opts.engine.threads = if parsed == 0 {
                        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
                    } else {
                        parsed as usize
                    };
                }
                SharedFlag::Population => opts.population = parsed as usize,
                SharedFlag::Shards => {
                    if parsed == 0 {
                        return Err("--shards needs at least 1".to_owned());
                    }
                    opts.engine.shards = parsed as usize;
                }
                SharedFlag::Probe | SharedFlag::Fel | SharedFlag::Layout => {
                    unreachable!("handled above")
                }
            }
        }
    }
    Ok(Some(which))
}

/// Parses the shared CLI arguments (the flags in the module-level table;
/// see [`usage`]). Unknown flags abort with the usage message.
///
/// `--threads 0` resolves to the available hardware parallelism.
///
/// # Errors
///
/// Returns a usage string on malformed arguments.
pub fn parse_options(args: impl Iterator<Item = String>) -> Result<CliOptions, String> {
    let mut opts = FigureOptions::default();
    let mut json_out = None;
    let mut metrics_out = None;
    let mut progress = false;
    let mut args = args.peekable();
    let usage = usage();
    while let Some(flag) = args.next() {
        if apply_shared_flag(&flag, &mut || args.next(), &mut opts)
            .map_err(|e| format!("{e}\n{usage}"))?
            .is_some()
        {
            continue;
        }
        match flag.as_str() {
            "--quick" => opts.reps = FigureOptions::quick().reps,
            "--progress" => progress = true,
            "--json" => {
                let value = args.next().ok_or_else(|| format!("--json needs a path\n{usage}"))?;
                json_out = Some(PathBuf::from(value));
            }
            "--metrics" => {
                let value =
                    args.next().ok_or_else(|| format!("--metrics needs a path\n{usage}"))?;
                metrics_out = Some(PathBuf::from(value));
            }
            other => return Err(format!("unknown flag {other:?}\n{usage}")),
        }
    }
    if opts.reps == 0 || opts.population == 0 {
        return Err(format!("reps and population must be positive\n{usage}"));
    }
    Ok(CliOptions { figure: opts, json_out, progress, metrics_out })
}

impl CliOptions {
    /// The figure options with the requested observer (see
    /// [`build_observer`]) already attached.
    ///
    /// # Errors
    ///
    /// Returns a message when the metrics file cannot be created.
    pub fn figure_with_observer(&self) -> Result<FigureOptions, String> {
        let mut opts = self.figure.clone();
        if let Some(observer) = build_observer(self)? {
            opts.observer = observer;
        }
        Ok(opts)
    }
}

/// Builds the observer the parsed options ask for: progress reporting
/// and/or a JSONL metrics sink, fanned out; `None` when neither was
/// requested.
///
/// # Errors
///
/// Returns a message when the metrics file cannot be created.
pub fn build_observer(cli: &CliOptions) -> Result<Option<ObserverHandle>, String> {
    if !cli.progress && cli.metrics_out.is_none() {
        return Ok(None);
    }
    let mut fan = FanoutObserver::new();
    if cli.progress {
        fan = fan.with(ProgressObserver::new());
    }
    if let Some(path) = &cli.metrics_out {
        let sink = JsonlObserver::create(path)
            .map_err(|e| format!("cannot create metrics file {}: {e}", path.display()))?;
        fan = fan.with(sink);
    }
    Ok(Some(ObserverHandle::new(fan)))
}

/// The JSON document `--json` writes: enough to re-plot or re-judge a
/// figure without re-running it.
#[derive(Debug, serde::Serialize)]
pub struct ArchivedReport<'a> {
    /// Figure title.
    pub title: &'a str,
    /// Replications per scenario.
    pub reps: u64,
    /// Master seed of the run.
    pub master_seed: u64,
    /// Population size.
    pub population: usize,
    /// Every curve with its full experiment result.
    pub results: &'a [LabeledResult],
}

/// Writes the archived-report JSON for `results` to `path`.
///
/// # Errors
///
/// Returns a description of the I/O or serialization failure.
pub fn write_json_report(
    path: &std::path::Path,
    title: &str,
    opts: &FigureOptions,
    results: &[LabeledResult],
) -> Result<(), String> {
    let report = ArchivedReport {
        title,
        reps: opts.reps,
        master_seed: opts.master_seed,
        population: opts.population,
        results,
    };
    let file = std::fs::File::create(path)
        .map_err(|e| format!("cannot create {}: {e}", path.display()))?;
    serde_json::to_writer_pretty(std::io::BufWriter::new(file), &report)
        .map_err(|e| format!("cannot serialize report: {e}"))
}

/// Renders a figure's labelled results as a terminal report: a summary
/// table, an ASCII chart of the mean curves, and a CSV block.
pub fn render_report(title: &str, results: &[LabeledResult]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "== {title} ==\n");

    // Summary table.
    let _ = writeln!(
        out,
        "{:<28} {:>6} {:>10} {:>10} {:>14}",
        "curve", "reps", "final", "ci95±", "t(half-final)h"
    );
    for r in results {
        let s = &r.result.final_infected;
        let half = s.mean / 2.0;
        let t_half = r
            .result
            .mean_time_to_reach(half)
            .map(|t| format!("{t:.1}"))
            .unwrap_or_else(|| "-".to_owned());
        let _ = writeln!(
            out,
            "{:<28} {:>6} {:>10.1} {:>10.1} {:>14}",
            r.label, s.n, s.mean, s.ci95_half_width, t_half
        );
    }
    let _ = writeln!(out);

    // Chart of the mean curves.
    let curves: Vec<(String, TimeSeries)> =
        results.iter().map(|r| (r.label.clone(), r.result.mean_series())).collect();
    let refs: Vec<(&str, &TimeSeries)> = curves.iter().map(|(l, s)| (l.as_str(), s)).collect();
    out.push_str(&ascii_chart(&refs, 72, 18, None));
    let _ = writeln!(out);

    // CSV for external plotting.
    let _ = writeln!(out, "--- CSV ---");
    out.push_str(&to_csv(&refs));

    // Mechanism telemetry, when the run carried a telemetry probe.
    if let Some(table) = render_telemetry(results) {
        let _ = writeln!(out);
        out.push_str(&table);
    }
    out
}

/// Renders the per-mechanism telemetry table for results whose runs
/// carried a telemetry probe (`--probe telemetry`); `None` when none did.
///
/// Each row sums a curve's counters over its replications; the
/// time-binned series behind them travel in the `--json` archive.
pub fn render_telemetry(results: &[LabeledResult]) -> Option<String> {
    let merged: Vec<(&str, MechanismTelemetry)> = results
        .iter()
        .filter_map(|r| {
            let mut acc: Option<MechanismTelemetry> = None;
            for run in &r.result.runs {
                if let Some(t) = run.telemetry() {
                    match acc.as_mut() {
                        Some(m) => m.merge(t),
                        None => acc = Some(t.clone()),
                    }
                }
            }
            acc.map(|t| (r.label.as_str(), t))
        })
        .collect();
    if merged.is_empty() {
        return None;
    }
    let mut out = String::new();
    let _ = writeln!(out, "--- mechanism telemetry (totals over all replications) ---");
    let _ = writeln!(
        out,
        "{:<28} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8} {:>9} {:>9}",
        "curve", "sent", "scan", "detect", "blist", "infect", "patch", "throttle", "wait(h)"
    );
    for (label, telemetry) in &merged {
        let t = telemetry.totals();
        let _ = writeln!(
            out,
            "{:<28} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8} {:>9} {:>9.1}",
            label,
            t.messages_sent,
            t.blocked_by_scan,
            t.blocked_by_detection,
            t.blocked_by_blacklist,
            t.infections,
            t.patches_applied,
            t.throttles,
            t.throttle_wait_secs as f64 / 3600.0,
        );
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<CliOptions, String> {
        parse_options(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults_when_no_args() {
        let o = parse(&[]).unwrap();
        assert_eq!(o.figure.reps, FigureOptions::default().reps);
        assert_eq!(o.figure.population, 1000);
        assert!(o.json_out.is_none());
    }

    #[test]
    fn all_flags_parse() {
        let o = parse(&["--reps", "5", "--seed", "9", "--threads", "2", "--population", "500"])
            .unwrap()
            .figure;
        assert_eq!(o.reps, 5);
        assert_eq!(o.master_seed, 9);
        assert_eq!(o.engine.threads, 2);
        assert_eq!(o.population, 500);
    }

    #[test]
    fn quick_flag() {
        let o = parse(&["--quick"]).unwrap();
        assert_eq!(o.figure.reps, FigureOptions::quick().reps);
    }

    #[test]
    fn json_flag_parses_and_requires_path() {
        let o = parse(&["--json", "/tmp/out.json"]).unwrap();
        assert_eq!(o.json_out.unwrap().to_str().unwrap(), "/tmp/out.json");
        assert!(parse(&["--json"]).is_err());
    }

    #[test]
    fn render_report_contains_table_chart_and_csv() {
        let opts = FigureOptions {
            reps: 1,
            master_seed: 2,
            engine: mpvsim_core::EngineOptions::new(),
            population: 30,
            ..FigureOptions::default()
        };
        let results = mpvsim_core::figures::fig7_blacklist(&opts).expect("tiny figure runs");
        let text = render_report("Figure 7", &results);
        assert!(text.contains("== Figure 7 =="));
        assert!(text.contains("Baseline"));
        assert!(text.contains("10 Messages"));
        assert!(text.contains("--- CSV ---"));
        assert!(text.contains("hours,Baseline"));
        assert!(text.contains("└"), "chart frame missing");
    }

    #[test]
    fn json_report_roundtrips_through_serde() {
        // Run a tiny experiment, archive it, parse it back.
        let opts = FigureOptions {
            reps: 1,
            master_seed: 1,
            engine: mpvsim_core::EngineOptions::new(),
            population: 30,
            ..FigureOptions::default()
        };
        let results = mpvsim_core::figures::fig6_monitoring(&opts).expect("tiny figure runs");
        let dir = std::env::temp_dir().join("mpvsim-json-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("fig6.json");
        write_json_report(&path, "Figure 6", &opts, &results).expect("writes");
        let text = std::fs::read_to_string(&path).unwrap();
        let value: serde_json::Value = serde_json::from_str(&text).expect("valid JSON");
        assert_eq!(value["title"], "Figure 6");
        assert_eq!(value["population"], 30);
        let archived = value["results"].as_array().unwrap();
        assert_eq!(archived.len(), results.len());
        assert_eq!(archived[0]["label"], "Baseline");
        assert!(archived[0]["result"]["final_infected"]["mean"].is_number());
    }

    #[test]
    fn rejects_unknown_flag() {
        assert!(parse(&["--bogus"]).is_err());
    }

    #[test]
    fn rejects_missing_value() {
        assert!(parse(&["--reps"]).is_err());
    }

    #[test]
    fn rejects_non_numeric() {
        assert!(parse(&["--reps", "many"]).is_err());
    }

    #[test]
    fn rejects_zero_values() {
        assert!(parse(&["--reps", "0"]).is_err());
        assert!(parse(&["--population", "0"]).is_err());
    }

    #[test]
    fn threads_zero_auto_detects() {
        let o = parse(&["--threads", "0"]).unwrap();
        assert!(o.figure.engine.threads >= 1, "auto-detect must resolve to a usable count");
    }

    #[test]
    fn progress_and_metrics_flags_parse() {
        let o = parse(&["--progress", "--metrics", "/tmp/m.jsonl"]).unwrap();
        assert!(o.progress);
        assert_eq!(o.metrics_out.unwrap().to_str().unwrap(), "/tmp/m.jsonl");
        assert!(parse(&["--metrics"]).is_err(), "--metrics needs a path");
        let o = parse(&[]).unwrap();
        assert!(!o.progress);
        assert!(o.metrics_out.is_none());
    }

    #[test]
    fn probe_flag_parses_and_rejects_unknown_kinds() {
        let o = parse(&["--probe", "telemetry"]).unwrap();
        assert_eq!(o.figure.engine.probe, ProbeKind::Telemetry);
        let o = parse(&[]).unwrap();
        assert_eq!(o.figure.engine.probe, ProbeKind::None, "no probe by default");
        let err = parse(&["--probe", "bogus"]).unwrap_err();
        assert!(err.contains("chain"), "error should list valid kinds: {err}");
        assert!(parse(&["--probe"]).is_err());
    }

    #[test]
    fn telemetry_table_appears_only_for_probed_runs() {
        let mut opts = FigureOptions {
            reps: 2,
            master_seed: 3,
            engine: mpvsim_core::EngineOptions::new(),
            population: 30,
            ..FigureOptions::default()
        };
        let plain = mpvsim_core::figures::fig7_blacklist(&opts).expect("tiny figure runs");
        assert!(render_telemetry(&plain).is_none());
        assert!(!render_report("Fig 7", &plain).contains("mechanism telemetry"));
        opts.engine.probe = ProbeKind::Telemetry;
        let probed = mpvsim_core::figures::fig7_blacklist(&opts).expect("tiny figure runs");
        let table = render_telemetry(&probed).expect("telemetry present");
        assert!(table.contains("Baseline"));
        assert!(render_report("Fig 7", &probed).contains("mechanism telemetry"));
    }

    #[test]
    fn fel_flag_parses_and_rejects_unknown_kinds() {
        let o = parse(&["--fel", "calendar"]).unwrap();
        assert_eq!(o.figure.engine.fel, FelKind::Calendar);
        let o = parse(&[]).unwrap();
        assert_eq!(o.figure.engine.fel, FelKind::BinaryHeap, "binary heap by default");
        let err = parse(&["--fel", "bogus"]).unwrap_err();
        assert!(err.contains("binary-heap"), "error should list backends: {err}");
        assert!(parse(&["--fel"]).is_err());
    }

    #[test]
    fn usage_mentions_every_flag() {
        let text = usage();
        for (flag, _, _) in FLAGS {
            assert!(text.contains(flag), "usage text missing {flag}");
        }
        // The usage string is what parse errors print.
        let err = parse(&["--bogus"]).unwrap_err();
        assert!(err.contains("--metrics"), "errors should carry the full usage");
    }

    #[test]
    fn build_observer_is_none_without_flags_and_some_with() {
        let bare = parse(&[]).unwrap();
        assert!(build_observer(&bare).unwrap().is_none());
        let dir = std::env::temp_dir().join("mpvsim-cli-observer-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("metrics.jsonl");
        let with = parse(&["--progress", "--metrics", path.to_str().unwrap()]).unwrap();
        assert!(build_observer(&with).unwrap().is_some());
        assert!(path.exists(), "metrics file created eagerly");
        let bad = parse(&["--metrics", "/nonexistent-dir-zzz/m.jsonl"]).unwrap();
        assert!(build_observer(&bad).is_err());
    }

    #[test]
    fn metrics_file_gets_one_line_per_replication_plus_summary() {
        let dir = std::env::temp_dir().join("mpvsim-cli-metrics-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("fig.jsonl");
        let cli = parse(&["--metrics", path.to_str().unwrap()]).unwrap();
        let mut opts = FigureOptions {
            reps: 2,
            master_seed: 4,
            engine: mpvsim_core::EngineOptions::new().with_threads(2),
            population: 30,
            ..FigureOptions::default()
        };
        opts.observer = build_observer(&cli).unwrap().expect("metrics requested");
        let results = mpvsim_core::figures::fig6_monitoring(&opts).expect("tiny figure runs");
        drop(results);
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        // fig6 runs 4 experiments (baseline + 3 waits) × 2 reps, each
        // experiment appending 2 replication lines and 1 summary line.
        assert_eq!(lines.len(), 4 * 3, "got:\n{text}");
        let reps = lines.iter().filter(|l| l.contains("\"type\":\"replication\"")).count();
        let sums = lines.iter().filter(|l| l.contains("\"type\":\"experiment\"")).count();
        assert_eq!((reps, sums), (8, 4));
        for line in lines {
            let v: serde_json::Value = serde_json::from_str(line).expect("valid JSON line");
            if v["type"] == "replication" {
                for key in ["rep", "seed", "wall_ms", "events_processed", "events_per_sec"] {
                    assert!(v[key].is_number(), "replication line missing {key}: {line}");
                }
            } else {
                assert_eq!(v["type"], "experiment");
                assert_eq!(v["reps"], 2);
            }
        }
    }
}
