//! A stable-name registry over every figure and study in
//! [`crate::figures`].
//!
//! Each study gets a [`StudyId`] whose [`name`](StudyId::name) is a
//! stable CLI-facing identifier (the historical per-figure binary name),
//! so `mpvsim study fig1_baseline` and a sweep manifest entry both refer
//! to the same declarative cell set forever. The registry is the single
//! enumeration the `all` report, the claim checker and the benchmark
//! suite iterate — adding a study here makes it reachable everywhere.

use crate::config::ConfigError;
use crate::figures::{self, FigureOptions, LabeledResult, StudyCell};

/// What part of the paper a study reproduces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum StudyKind {
    /// A numbered figure of the evaluation section (Figures 1–7).
    Figure,
    /// A quantitative prose claim (§5.2 blacklist matrix, §5.3 scaling,
    /// §6 combined mechanisms).
    Claim,
    /// An extension beyond the paper (Bluetooth vector, false positives,
    /// rollout order, diminishing returns, congestion, the synthesis
    /// matrix).
    Extension,
}

/// Stable identifier of one study; the `name()` strings are frozen —
/// they appear in sweep manifests and on the CLI.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
#[allow(missing_docs)] // each variant is documented by its registry title
pub enum StudyId {
    Fig1Baseline,
    Fig2VirusScan,
    Fig3Detection,
    Fig4Education,
    Fig5Immunization,
    Fig6Monitoring,
    Fig7Blacklist,
    BlacklistMatrix,
    Scaling,
    Combo,
    ExtBluetooth,
    ExtFalsePositives,
    ExtRolloutOrder,
    DiminishingReturns,
    ExtCongestion,
    Matrix,
}

/// One registry entry: a study's identity plus its declarative cell
/// builder.
pub struct StudyInfo {
    /// The study's id.
    pub id: StudyId,
    /// Stable CLI-facing name (historically the per-figure binary name).
    pub name: &'static str,
    /// Human-readable report title.
    pub title: &'static str,
    /// Which part of the paper the study reproduces.
    pub kind: StudyKind,
    /// Builds the study's labelled cells for the given options.
    pub cells: fn(&FigureOptions) -> Vec<StudyCell>,
}

impl std::fmt::Debug for StudyInfo {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StudyInfo")
            .field("id", &self.id)
            .field("name", &self.name)
            .field("kind", &self.kind)
            .finish()
    }
}

static REGISTRY: &[StudyInfo] = &[
    StudyInfo {
        id: StudyId::Fig1Baseline,
        name: "fig1_baseline",
        title: "Figure 1 — Baseline Infection Curves without Response Mechanisms",
        kind: StudyKind::Figure,
        cells: figures::fig1_baseline_cells,
    },
    StudyInfo {
        id: StudyId::Fig2VirusScan,
        name: "fig2_virus_scan",
        title: "Figure 2 — Virus Scan: Varying the Activation Time Delay (Virus 1)",
        kind: StudyKind::Figure,
        cells: figures::fig2_virus_scan_cells,
    },
    StudyInfo {
        id: StudyId::Fig3Detection,
        name: "fig3_detection",
        title: "Figure 3 — Virus Detection Algorithm: Varying Detection Accuracy (Virus 2)",
        kind: StudyKind::Figure,
        cells: figures::fig3_detection_cells,
    },
    StudyInfo {
        id: StudyId::Fig4Education,
        name: "fig4_education",
        title: "Figure 4 — Phone User Education: Effective for All Viruses",
        kind: StudyKind::Figure,
        cells: figures::fig4_education_cells,
    },
    StudyInfo {
        id: StudyId::Fig5Immunization,
        name: "fig5_immunization",
        title: "Figure 5 — Immunization Using Patches: Varying the Deployment Times (Virus 4)",
        kind: StudyKind::Figure,
        cells: figures::fig5_immunization_cells,
    },
    StudyInfo {
        id: StudyId::Fig6Monitoring,
        name: "fig6_monitoring",
        title: "Figure 6 — Monitoring: Varying the Wait Time for Suspicious Phones (Virus 3)",
        kind: StudyKind::Figure,
        cells: figures::fig6_monitoring_cells,
    },
    StudyInfo {
        id: StudyId::Fig7Blacklist,
        name: "fig7_blacklist",
        title: "Figure 7 — Blacklisting: Varying the Activation Threshold (Virus 3)",
        kind: StudyKind::Figure,
        cells: figures::fig7_blacklist_cells,
    },
    StudyInfo {
        id: StudyId::BlacklistMatrix,
        name: "blacklist_matrix",
        title: "§5.2 — Blacklisting vs. Contact-List Viruses (prose claims)",
        kind: StudyKind::Claim,
        cells: figures::blacklist_matrix_cells,
    },
    StudyInfo {
        id: StudyId::Scaling,
        name: "scaling",
        title: "§5.3 — Population Scaling Study (1000 vs 2000 phones)",
        kind: StudyKind::Claim,
        cells: figures::scaling_study_cells,
    },
    StudyInfo {
        id: StudyId::Combo,
        name: "combo",
        title: "§6 — Combined Mechanisms: Monitoring + Signature Scan (Virus 3)",
        kind: StudyKind::Claim,
        cells: figures::combo_study_cells,
    },
    StudyInfo {
        id: StudyId::ExtBluetooth,
        name: "ext_bluetooth",
        title: "§6 extension — Bluetooth propagation vector (random-waypoint mobility)",
        kind: StudyKind::Extension,
        cells: figures::bluetooth_study_cells,
    },
    StudyInfo {
        id: StudyId::ExtFalsePositives,
        name: "ext_false_positives",
        title: "Extension — Monitoring False Positives (Virus 3 + legitimate traffic)",
        kind: StudyKind::Extension,
        cells: figures::false_positive_study_cells,
    },
    StudyInfo {
        id: StudyId::ExtRolloutOrder,
        name: "ext_rollout_order",
        title: "Extension — Patch Rollout Order: Uniform vs Hubs-First",
        kind: StudyKind::Extension,
        cells: figures::rollout_order_study_cells,
    },
    StudyInfo {
        id: StudyId::DiminishingReturns,
        name: "diminishing_returns",
        title: "§5.3 — Point of Diminishing Returns per Mechanism",
        kind: StudyKind::Extension,
        cells: figures::diminishing_returns_study_cells,
    },
    StudyInfo {
        id: StudyId::ExtCongestion,
        name: "ext_congestion",
        title: "Extension — Gateway Congestion (Virus 3 vs finite MMS capacity)",
        kind: StudyKind::Extension,
        cells: figures::congestion_study_cells,
    },
    StudyInfo {
        id: StudyId::Matrix,
        name: "matrix",
        title: "§5.3 — Effectiveness Matrix (final infections, % of baseline)",
        kind: StudyKind::Extension,
        cells: figures::effectiveness_matrix_cells,
    },
];

/// Every registered study, in report order (figures, then prose claims,
/// then extensions).
pub fn registry() -> &'static [StudyInfo] {
    REGISTRY
}

impl StudyId {
    /// Every study id, in registry order.
    pub fn all() -> Vec<StudyId> {
        REGISTRY.iter().map(|s| s.id).collect()
    }

    /// Looks a study up by its stable name.
    pub fn from_name(name: &str) -> Option<StudyId> {
        REGISTRY.iter().find(|s| s.name == name).map(|s| s.id)
    }

    /// This study's registry entry.
    pub fn info(self) -> &'static StudyInfo {
        REGISTRY.iter().find(|s| s.id == self).expect("every StudyId variant has a registry entry")
    }

    /// Stable CLI-facing name (e.g. `"fig1_baseline"`).
    pub fn name(self) -> &'static str {
        self.info().name
    }

    /// Human-readable report title.
    pub fn title(self) -> &'static str {
        self.info().title
    }

    /// Which part of the paper the study reproduces.
    pub fn kind(self) -> StudyKind {
        self.info().kind
    }

    /// The study's declarative cells for the given options. Each cell's
    /// spec carries the replication plan from `opts` (`reps`,
    /// `master_seed`), so a cell is a complete, self-describing
    /// experiment — ready for the sweep store, a golden spec file, or a
    /// `POST /v1/runs` body.
    pub fn cells(self, opts: &FigureOptions) -> Vec<StudyCell> {
        let mut cells = (self.info().cells)(opts);
        for c in &mut cells {
            c.spec.reps = opts.reps;
            c.spec.master_seed = opts.master_seed;
        }
        cells
    }

    /// Runs the study: builds its cells and executes them with the plan
    /// described by `opts`.
    ///
    /// # Errors
    ///
    /// Propagates [`ConfigError`] from scenario validation or failed
    /// replications.
    pub fn run(self, opts: &FigureOptions) -> Result<Vec<LabeledResult>, ConfigError> {
        figures::run_cells(&self.cells(opts), opts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn every_variant_has_an_entry_and_names_are_unique() {
        let ids = StudyId::all();
        assert_eq!(ids.len(), REGISTRY.len());
        let names: HashSet<&str> = REGISTRY.iter().map(|s| s.name).collect();
        assert_eq!(names.len(), REGISTRY.len(), "duplicate study name");
        for id in ids {
            assert_eq!(StudyId::from_name(id.name()), Some(id));
            assert!(!id.title().is_empty());
        }
    }

    #[test]
    fn registry_order_groups_kinds() {
        let kinds: Vec<StudyKind> = REGISTRY.iter().map(|s| s.kind).collect();
        let figures = kinds.iter().filter(|k| **k == StudyKind::Figure).count();
        let claims = kinds.iter().filter(|k| **k == StudyKind::Claim).count();
        assert_eq!(figures, 7);
        assert_eq!(claims, 3);
        assert!(kinds[..figures].iter().all(|k| *k == StudyKind::Figure));
        assert!(kinds[figures..figures + claims].iter().all(|k| *k == StudyKind::Claim));
    }

    #[test]
    fn run_matches_direct_figure_call() {
        let opts = FigureOptions {
            reps: 1,
            master_seed: 9,
            engine: crate::run::EngineOptions::new(),
            population: 40,
            ..FigureOptions::default()
        };
        let via_registry = StudyId::Fig7Blacklist.run(&opts).unwrap();
        let direct = figures::fig7_blacklist(&opts).unwrap();
        assert_eq!(via_registry.len(), direct.len());
        for (a, b) in via_registry.iter().zip(&direct) {
            assert_eq!(a.label, b.label);
            let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
            assert_eq!(bits(&a.result.aggregate.mean), bits(&b.result.aggregate.mean));
        }
    }

    #[test]
    fn unknown_name_is_none() {
        assert_eq!(StudyId::from_name("fig9_wishful"), None);
    }
}
