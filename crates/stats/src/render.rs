//! Rendering curves as CSV and terminal ASCII charts.
//!
//! Every figure binary prints (a) a CSV block that can be piped into any
//! plotting tool to redraw the paper's figure, and (b) an ASCII chart so
//! the curve shape is visible directly in the terminal.

use std::fmt::Write as _;

use crate::series::TimeSeries;

/// Renders labelled series sharing a sampling grid as CSV:
/// a `hours` column followed by one column per series.
///
/// Shorter series hold their final value, matching
/// [`crate::aggregate::aggregate`].
///
/// ```rust
/// use mpvsim_stats::{TimeSeries, render::to_csv};
/// let s = TimeSeries::from_values(1.0, vec![0.0, 2.0]);
/// let csv = to_csv(&[("virus1", &s)]);
/// assert_eq!(csv.lines().next().unwrap(), "hours,virus1");
/// assert_eq!(csv.lines().count(), 3);
/// ```
pub fn to_csv(series: &[(&str, &TimeSeries)]) -> String {
    let mut out = String::from("hours");
    for (name, _) in series {
        let _ = write!(out, ",{name}");
    }
    out.push('\n');
    let Some(step) = series.first().map(|(_, s)| s.step_hours()) else {
        return out;
    };
    let len = series.iter().map(|(_, s)| s.len()).max().unwrap_or(0);
    for k in 0..len {
        let _ = write!(out, "{}", k as f64 * step);
        for (_, s) in series {
            let vals = s.values();
            if vals.is_empty() {
                out.push(',');
            } else {
                let _ = write!(out, ",{}", vals[k.min(vals.len() - 1)]);
            }
        }
        out.push('\n');
    }
    out
}

/// Plots labelled series as a fixed-size ASCII chart.
///
/// Each series is drawn with its own glyph (`1`, `2`, … by position);
/// overlapping points show the later series. The vertical axis is scaled
/// to the maximum across all series (or `y_max` if given).
pub fn ascii_chart(
    series: &[(&str, &TimeSeries)],
    width: usize,
    height: usize,
    y_max: Option<f64>,
) -> String {
    const GLYPHS: &[u8] = b"123456789abcdef";
    let width = width.max(10);
    let height = height.max(4);
    if series.is_empty() || series.iter().all(|(_, s)| s.is_empty()) {
        return String::from("(no data)\n");
    }
    let max_hours = series
        .iter()
        .map(|(_, s)| s.time_at(s.len().saturating_sub(1)))
        .fold(0.0f64, f64::max)
        .max(1e-9);
    let max_y = y_max
        .unwrap_or_else(|| series.iter().filter_map(|(_, s)| s.max_value()).fold(0.0f64, f64::max));
    let max_y = if max_y <= 0.0 { 1.0 } else { max_y };

    let mut grid = vec![vec![b' '; width]; height];
    for (si, (_, s)) in series.iter().enumerate() {
        let glyph = GLYPHS[si % GLYPHS.len()];
        for (t, v) in s.points() {
            let x = ((t / max_hours) * (width - 1) as f64).round() as usize;
            let y = ((v / max_y) * (height - 1) as f64).round() as usize;
            let row = height - 1 - y.min(height - 1);
            grid[row][x.min(width - 1)] = glyph;
        }
    }

    let mut out = String::new();
    let _ = writeln!(out, "{max_y:>8.0} ┤");
    for row in &grid {
        let _ = writeln!(out, "         │{}", String::from_utf8_lossy(row));
    }
    let _ = writeln!(out, "         └{}", "─".repeat(width));
    let _ = writeln!(out, "          0{:>width$.0}h", max_hours, width = width - 1);
    for (si, (name, _)) in series.iter().enumerate() {
        let _ = writeln!(out, "          [{}] {}", GLYPHS[si % GLYPHS.len()] as char, name);
    }
    out
}

/// Renders rows as a GitHub-flavored markdown table. The first column is
/// left-aligned, the rest right-aligned (the usual shape for label +
/// numbers).
///
/// # Panics
///
/// Panics if any row's length differs from the header's.
///
/// ```rust
/// let md = mpvsim_stats::render::markdown_table(
///     &["curve", "final"],
///     &[vec!["Baseline".into(), "322.2".into()]],
/// );
/// assert!(md.starts_with("| curve | final |\n|---|---:|\n"));
/// ```
pub fn markdown_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut out = String::from("|");
    for h in headers {
        let _ = write!(out, " {h} |");
    }
    out.push_str("\n|");
    for (i, _) in headers.iter().enumerate() {
        out.push_str(if i == 0 { "---|" } else { "---:|" });
    }
    out.push('\n');
    for row in rows {
        assert_eq!(row.len(), headers.len(), "row width must match header");
        out.push('|');
        for cell in row {
            let _ = write!(out, " {cell} |");
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(vals: &[f64]) -> TimeSeries {
        TimeSeries::from_values(1.0, vals.to_vec())
    }

    #[test]
    fn csv_header_and_rows() {
        let a = s(&[0.0, 1.0, 2.0]);
        let b = s(&[5.0, 5.0, 5.0]);
        let csv = to_csv(&[("a", &a), ("b", &b)]);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "hours,a,b");
        assert_eq!(lines[1], "0,0,5");
        assert_eq!(lines[3], "2,2,5");
        assert_eq!(lines.len(), 4);
    }

    #[test]
    fn csv_extends_short_series() {
        let a = s(&[1.0]);
        let b = s(&[0.0, 2.0]);
        let csv = to_csv(&[("a", &a), ("b", &b)]);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[2], "1,1,2");
    }

    #[test]
    fn csv_empty_input() {
        assert_eq!(to_csv(&[]), "hours\n");
    }

    #[test]
    fn chart_contains_glyphs_and_legend() {
        let a = s(&[0.0, 10.0, 20.0, 30.0]);
        let chart = ascii_chart(&[("rising", &a)], 40, 10, None);
        assert!(chart.contains('1'), "glyph missing:\n{chart}");
        assert!(chart.contains("rising"));
        assert!(chart.contains("└"));
    }

    #[test]
    fn chart_handles_empty_series() {
        assert_eq!(ascii_chart(&[], 40, 10, None), "(no data)\n");
        let empty = TimeSeries::new(1.0);
        assert_eq!(ascii_chart(&[("e", &empty)], 40, 10, None), "(no data)\n");
    }

    #[test]
    fn chart_respects_explicit_y_max() {
        let a = s(&[0.0, 1.0]);
        let chart = ascii_chart(&[("tiny", &a)], 20, 5, Some(320.0));
        assert!(chart.contains("320"), "y-axis label missing:\n{chart}");
    }

    #[test]
    fn chart_all_zero_series() {
        let a = s(&[0.0, 0.0, 0.0]);
        let chart = ascii_chart(&[("flat", &a)], 20, 5, None);
        assert!(chart.contains("flat"));
    }

    #[test]
    fn markdown_table_shape() {
        let md = markdown_table(
            &["curve", "final", "t½"],
            &[
                vec!["Baseline".into(), "322".into(), "5.9".into()],
                vec!["Wait 15".into(), "166".into(), "19.1".into()],
            ],
        );
        let lines: Vec<&str> = md.lines().collect();
        assert_eq!(lines[0], "| curve | final | t½ |");
        assert_eq!(lines[1], "|---|---:|---:|");
        assert_eq!(lines.len(), 4);
        assert!(lines[3].contains("Wait 15"));
    }

    #[test]
    fn markdown_table_empty_rows() {
        let md = markdown_table(&["a"], &[]);
        assert_eq!(md.lines().count(), 2);
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn markdown_table_ragged_rows_panic() {
        let _ = markdown_table(&["a", "b"], &[vec!["x".into()]]);
    }

    #[test]
    fn multiple_series_distinct_glyphs() {
        let a = s(&[0.0, 30.0]);
        let b = s(&[30.0, 0.0]);
        let chart = ascii_chart(&[("a", &a), ("b", &b)], 30, 8, None);
        assert!(chart.contains('1'));
        assert!(chart.contains('2'));
    }
}
