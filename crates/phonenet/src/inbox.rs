//! Per-phone inboxes: delivered-but-unread infected messages.
//!
//! §4.1 of the paper: "the incoming infected MMS messages wait in the
//! inbox until the phone user makes a decision whether to accept (open)
//! the MMS message attachment." The epidemic model schedules one read
//! event per delivery; the inbox tracks how many deliveries are still
//! awaiting their read, which makes user backlog observable (e.g. the
//! flood of unread virus messages Virus 3 produces).
//!
//! # Bounded admission
//!
//! Every pending delivery carries a scheduled `ReadMessage` event, so an
//! unbounded inbox means an unbounded future-event list: at paper scale a
//! fig1 replication peaks at hundreds of pending events *per phone*. An
//! optional per-phone cap bounds that. Admission is deterministic
//! **tail-drop**: a delivery into a full inbox is refused outright
//! ([`Inboxes::try_deliver`] returns `None`) and counted in
//! [`Inboxes::total_dropped`]; deliveries below the cap are never
//! dropped. Dropping the newest message (rather than evicting an older
//! pending one) means no already-scheduled read event is ever
//! invalidated, which keeps replay deterministic.

use serde::{Deserialize, Serialize};

use crate::arena::BufferPool;
use crate::phone::PhoneId;

/// Unread-message bookkeeping for a whole population.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Inboxes {
    pending: Vec<u32>,
    /// Per-phone pending-delivery cap; `None` = unbounded.
    cap: Option<u32>,
    total_delivered: u64,
    total_read: u64,
    total_dropped: u64,
    peak_pending: u32,
}

impl Inboxes {
    /// Creates empty, unbounded inboxes for `population_size` phones.
    pub fn new(population_size: usize) -> Self {
        Self::with_cap(population_size, None)
    }

    /// Creates empty inboxes with an optional per-phone pending cap.
    ///
    /// # Panics
    ///
    /// Panics if `cap` is `Some(0)` — an inbox that can never admit a
    /// message is a configuration bug, not a model state.
    pub fn with_cap(population_size: usize, cap: Option<u32>) -> Self {
        assert!(cap != Some(0), "inbox cap must be at least 1");
        Inboxes {
            pending: vec![0; population_size],
            cap,
            total_delivered: 0,
            total_read: 0,
            total_dropped: 0,
            peak_pending: 0,
        }
    }

    /// Like [`Inboxes::with_cap`], taking the pending array from `pool`.
    ///
    /// # Panics
    ///
    /// Panics if `cap` is `Some(0)`.
    pub fn with_cap_pooled(
        population_size: usize,
        cap: Option<u32>,
        pool: &mut BufferPool,
    ) -> Self {
        assert!(cap != Some(0), "inbox cap must be at least 1");
        Inboxes {
            pending: pool.take_u32(population_size, 0),
            cap,
            total_delivered: 0,
            total_read: 0,
            total_dropped: 0,
            peak_pending: 0,
        }
    }

    /// Returns the pending array to `pool` for the next replication.
    pub fn recycle(self, pool: &mut BufferPool) {
        pool.recycle_u32(self.pending);
    }

    /// The per-phone pending cap, if bounded.
    pub fn cap(&self) -> Option<u32> {
        self.cap
    }

    /// Attempts to record a delivery into `phone`'s inbox.
    ///
    /// Returns `Some(new_depth)` on admission. Returns `None` — and counts
    /// the message as dropped — only when the inbox already holds `cap`
    /// pending messages; below the cap a delivery is never refused.
    ///
    /// # Panics
    ///
    /// Panics if `phone` is out of range.
    pub fn try_deliver(&mut self, phone: PhoneId) -> Option<u32> {
        let slot = &mut self.pending[phone.index()];
        if let Some(cap) = self.cap {
            if *slot >= cap {
                self.total_dropped += 1;
                return None;
            }
        }
        *slot += 1;
        self.total_delivered += 1;
        if *slot > self.peak_pending {
            self.peak_pending = *slot;
        }
        Some(*slot)
    }

    /// Records a delivery into `phone`'s inbox; returns its new depth.
    ///
    /// # Panics
    ///
    /// Panics if `phone` is out of range, or if the inbox is full — use
    /// [`Inboxes::try_deliver`] when a cap is configured.
    pub fn deliver(&mut self, phone: PhoneId) -> u32 {
        self.try_deliver(phone).expect("delivery refused by full inbox; use try_deliver")
    }

    /// Records that `phone`'s user read (and decided on) one pending
    /// message; returns the remaining depth.
    ///
    /// # Panics
    ///
    /// Panics if `phone` is out of range or its inbox is empty — a read
    /// without a matching delivery is a model bug.
    pub fn read(&mut self, phone: PhoneId) -> u32 {
        let slot = &mut self.pending[phone.index()];
        assert!(*slot > 0, "read from an empty inbox at {phone}");
        *slot -= 1;
        self.total_read += 1;
        *slot
    }

    /// Messages currently waiting in `phone`'s inbox.
    ///
    /// # Panics
    ///
    /// Panics if `phone` is out of range.
    pub fn pending(&self, phone: PhoneId) -> u32 {
        self.pending[phone.index()]
    }

    /// Messages currently waiting across all inboxes.
    pub fn total_pending(&self) -> u64 {
        self.pending.iter().map(|&p| u64::from(p)).sum()
    }

    /// Lifetime delivery count (admitted messages only).
    pub fn total_delivered(&self) -> u64 {
        self.total_delivered
    }

    /// Lifetime read count.
    pub fn total_read(&self) -> u64 {
        self.total_read
    }

    /// Lifetime count of deliveries refused by the admission cap.
    pub fn total_dropped(&self) -> u64 {
        self.total_dropped
    }

    /// The deepest any single inbox ever got.
    pub fn peak_pending(&self) -> u32 {
        self.peak_pending
    }

    /// Resident bytes of the per-phone pending array (the structure's
    /// only population-proportional state).
    pub fn resident_bytes(&self) -> usize {
        std::mem::size_of_val(self.pending.as_slice())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn deliver_then_read_balances() {
        let mut ib = Inboxes::new(3);
        assert_eq!(ib.deliver(PhoneId(1)), 1);
        assert_eq!(ib.deliver(PhoneId(1)), 2);
        assert_eq!(ib.pending(PhoneId(1)), 2);
        assert_eq!(ib.read(PhoneId(1)), 1);
        assert_eq!(ib.read(PhoneId(1)), 0);
        assert_eq!(ib.total_delivered(), 2);
        assert_eq!(ib.total_read(), 2);
        assert_eq!(ib.total_pending(), 0);
    }

    #[test]
    fn peak_tracks_deepest_inbox() {
        let mut ib = Inboxes::new(2);
        for _ in 0..5 {
            ib.deliver(PhoneId(0));
        }
        for _ in 0..5 {
            ib.read(PhoneId(0));
        }
        ib.deliver(PhoneId(1));
        assert_eq!(ib.peak_pending(), 5);
    }

    #[test]
    fn phones_tracked_independently() {
        let mut ib = Inboxes::new(2);
        ib.deliver(PhoneId(0));
        assert_eq!(ib.pending(PhoneId(1)), 0);
        assert_eq!(ib.total_pending(), 1);
    }

    #[test]
    #[should_panic(expected = "empty inbox")]
    fn read_from_empty_inbox_panics() {
        let mut ib = Inboxes::new(1);
        ib.read(PhoneId(0));
    }

    #[test]
    #[should_panic]
    fn out_of_range_panics() {
        let mut ib = Inboxes::new(1);
        ib.deliver(PhoneId(7));
    }

    #[test]
    fn cap_refuses_only_at_capacity() {
        let mut ib = Inboxes::with_cap(2, Some(2));
        assert_eq!(ib.try_deliver(PhoneId(0)), Some(1));
        assert_eq!(ib.try_deliver(PhoneId(0)), Some(2));
        assert_eq!(ib.try_deliver(PhoneId(0)), None, "full inbox tail-drops");
        assert_eq!(ib.total_dropped(), 1);
        assert_eq!(ib.pending(PhoneId(0)), 2);
        // A read frees one slot; admission resumes.
        ib.read(PhoneId(0));
        assert_eq!(ib.try_deliver(PhoneId(0)), Some(2));
        // Other phones are unaffected by phone 0's backlog.
        assert_eq!(ib.try_deliver(PhoneId(1)), Some(1));
        assert_eq!(ib.total_delivered(), 4);
    }

    #[test]
    fn uncapped_inbox_never_drops() {
        let mut ib = Inboxes::new(1);
        for i in 1..=1000 {
            assert_eq!(ib.try_deliver(PhoneId(0)), Some(i));
        }
        assert_eq!(ib.total_dropped(), 0);
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_cap_rejected() {
        Inboxes::with_cap(1, Some(0));
    }

    #[test]
    fn pooled_inboxes_start_clean() {
        let mut pool = BufferPool::new();
        let mut stale = Inboxes::with_cap_pooled(4, None, &mut pool);
        stale.deliver(PhoneId(2));
        stale.recycle(&mut pool);
        let ib = Inboxes::with_cap_pooled(3, Some(5), &mut pool);
        assert_eq!(ib.total_pending(), 0);
        assert_eq!(ib.peak_pending(), 0);
        assert_eq!(ib.cap(), Some(5));
    }

    proptest! {
        /// Satellite invariant: bounded admission never drops a message
        /// while the inbox is below the cap, never admits one above it,
        /// and the books always balance.
        #[test]
        fn prop_admission_drops_only_at_cap(
            cap in 1u32..6,
            ops in proptest::collection::vec(any::<bool>(), 1..200),
        ) {
            let mut ib = Inboxes::with_cap(1, Some(cap));
            let p = PhoneId(0);
            for deliver in ops {
                if deliver {
                    let before = ib.pending(p);
                    let admitted = ib.try_deliver(p);
                    if before < cap {
                        prop_assert_eq!(admitted, Some(before + 1),
                            "below-cap delivery must be admitted");
                    } else {
                        prop_assert_eq!(admitted, None,
                            "at-cap delivery must be refused");
                    }
                } else if ib.pending(p) > 0 {
                    ib.read(p);
                }
                prop_assert!(ib.pending(p) <= cap);
            }
            prop_assert_eq!(ib.total_delivered() - ib.total_read(), ib.total_pending());
        }
    }
}
