//! Goodness-of-fit helpers for the differential oracle.
//!
//! The validation layer compares the stochastic engine against the
//! mean-field ODE and against its own committed golden runs. Two tests
//! carry that comparison:
//!
//! * **CI containment** — does a replication set's 95% confidence
//!   interval cover a reference mean? ([`ci95_contains`])
//! * **Two-sample Kolmogorov–Smirnov distance** — are two sets of
//!   per-replication outcomes drawn from plausibly the same
//!   distribution? ([`ks_distance`], [`ks_critical_value`])

use crate::welford::RunningSummary;

/// The two-sample Kolmogorov–Smirnov statistic: the supremum distance
/// between the empirical CDFs of `a` and `b`.
///
/// Inputs need not be sorted; NaNs are ordered with [`f64::total_cmp`]
/// (after all finite values) so the statistic is always well defined.
/// Returns 0.0 when either sample is empty — an empty sample carries no
/// distributional evidence to reject on.
pub fn ks_distance(a: &[f64], b: &[f64]) -> f64 {
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    let mut xs = a.to_vec();
    let mut ys = b.to_vec();
    xs.sort_unstable_by(f64::total_cmp);
    ys.sort_unstable_by(f64::total_cmp);

    let (n, m) = (xs.len() as f64, ys.len() as f64);
    let (mut i, mut j) = (0usize, 0usize);
    let mut sup = 0.0f64;
    while i < xs.len() && j < ys.len() {
        // Advance past ties in lockstep so both CDFs are evaluated at
        // the same point.
        let x = xs[i].min(ys[j]);
        while i < xs.len() && xs[i].total_cmp(&x).is_le() {
            i += 1;
        }
        while j < ys.len() && ys[j].total_cmp(&x).is_le() {
            j += 1;
        }
        let d = (i as f64 / n - j as f64 / m).abs();
        if d > sup {
            sup = d;
        }
    }
    sup
}

/// The large-sample critical value for the two-sample K-S test at the
/// given significance level: `c(α) · sqrt((n + m) / (n · m))` with
/// `c(α) = sqrt(-ln(α / 2) / 2)`.
///
/// A [`ks_distance`] exceeding this value rejects "same distribution"
/// at level `alpha`. The asymptotic formula is conservative for the
/// small replication counts used by the oracle, which is the safe
/// direction for a regression gate.
///
/// # Panics
///
/// Panics if `alpha` is outside `(0, 1)` or either sample size is zero.
pub fn ks_critical_value(n: usize, m: usize, alpha: f64) -> f64 {
    assert!(alpha > 0.0 && alpha < 1.0, "alpha must be in (0, 1)");
    assert!(n > 0 && m > 0, "sample sizes must be positive");
    let c = (-(alpha / 2.0).ln() / 2.0).sqrt();
    let (n, m) = (n as f64, m as f64);
    c * ((n + m) / (n * m)).sqrt()
}

/// Whether the 95% confidence interval of `summary` contains `value`.
///
/// `min_half_width` widens degenerate intervals: with few replications
/// (or zero sample variance) the CI half-width can collapse to zero,
/// which would make the containment check vacuously fail on any
/// reference that differs in the last bit. The oracle passes the
/// tolerance it is prepared to accept as `min_half_width`.
pub fn ci95_contains(summary: &RunningSummary, value: f64, min_half_width: f64) -> bool {
    let half = summary.ci95_half_width().max(min_half_width);
    (summary.mean() - value).abs() <= half
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_samples_have_zero_distance() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(ks_distance(&xs, &xs), 0.0);
    }

    #[test]
    fn disjoint_samples_have_distance_one() {
        let a = [0.0, 1.0, 2.0];
        let b = [10.0, 11.0, 12.0];
        assert_eq!(ks_distance(&a, &b), 1.0);
        assert_eq!(ks_distance(&b, &a), 1.0);
    }

    #[test]
    fn distance_is_symmetric_and_order_free() {
        let a = [3.0, 1.0, 2.0, 8.0];
        let b = [2.5, 0.5, 9.0];
        let d1 = ks_distance(&a, &b);
        let d2 = ks_distance(&b, &a);
        assert_eq!(d1, d2);
        let mut a_sorted = a;
        a_sorted.sort_unstable_by(f64::total_cmp);
        assert_eq!(ks_distance(&a_sorted, &b), d1);
    }

    #[test]
    fn known_half_shift() {
        // a = {0,1}, b = {1,2}: CDFs differ by 1/2 on [0,1).
        let a = [0.0, 1.0];
        let b = [1.0, 2.0];
        assert!((ks_distance(&a, &b) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_samples_are_inert() {
        assert_eq!(ks_distance(&[], &[1.0]), 0.0);
        assert_eq!(ks_distance(&[1.0], &[]), 0.0);
    }

    #[test]
    fn critical_value_matches_textbook() {
        // c(0.05) ≈ 1.358; equal n = m = 100 → D_crit ≈ 0.192.
        let d = ks_critical_value(100, 100, 0.05);
        assert!((d - 0.192_07).abs() < 1e-3, "got {d}");
        // Stricter alpha → larger critical value.
        assert!(ks_critical_value(100, 100, 0.01) > d);
    }

    #[test]
    fn ci_containment_with_floor() {
        let mut s = RunningSummary::new();
        for v in [10.0, 10.0, 10.0] {
            s.push(v);
        }
        // Zero variance: bare CI excludes everything but the mean…
        assert!(ci95_contains(&s, 10.0, 0.0));
        assert!(!ci95_contains(&s, 10.4, 0.0));
        // …but the floor admits values within the stated tolerance.
        assert!(ci95_contains(&s, 10.4, 0.5));
        assert!(!ci95_contains(&s, 11.0, 0.5));
    }
}
