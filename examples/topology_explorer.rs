//! Topology explorer: generate each contact-network family, inspect its
//! structure, and see how the topology changes Virus 1's spread.
//!
//! The paper argues (§4.3) that contact lists follow a power-law like
//! email address books; this example quantifies how much that assumption
//! matters by racing the same virus over four different graph families of
//! equal mean degree.
//!
//! ```text
//! cargo run --release --example topology_explorer
//! ```

use mpvsim::prelude::*;
use mpvsim::topology::analysis;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), ConfigError> {
    let n = 1000;
    let mean_degree = 80.0;
    let families: Vec<(&str, GraphSpec)> = vec![
        ("power-law (paper)", GraphSpec::power_law(n, mean_degree)),
        ("Erdős–Rényi", GraphSpec::erdos_renyi(n, mean_degree)),
        ("Watts–Strogatz", GraphSpec::watts_strogatz(n, 80, 0.1)),
        ("ring lattice", GraphSpec::ring(n, 80)),
    ];

    println!("structure of each family ({n} nodes, mean degree {mean_degree}):\n");
    println!(
        "{:<20} {:>8} {:>6} {:>6} {:>10} {:>10} {:>8}",
        "family", "mean", "min", "max", "degree var", "clustering", "giant %"
    );
    let mut rng = StdRng::seed_from_u64(7);
    for (name, spec) in &families {
        let g = spec.generate(&mut rng).expect("valid spec");
        let d = analysis::degree_stats(&g);
        println!(
            "{:<20} {:>8.1} {:>6} {:>6} {:>10.1} {:>10.3} {:>7.1}%",
            name,
            d.mean,
            d.min,
            d.max,
            d.variance,
            analysis::global_clustering(&g),
            100.0 * analysis::largest_component_fraction(&g),
        );
    }

    println!("\nVirus 1 on each topology (5 replications, 6-day horizon):\n");
    println!("{:<20} {:>14} {:>16}", "family", "final infected", "t(100 phones) h");
    for (name, spec) in families {
        let mut config = ScenarioConfig::baseline(VirusProfile::virus1());
        config.population = PopulationConfig { topology: spec, vulnerable_fraction: 0.8 };
        config.horizon = SimDuration::from_days(6);
        let result = ExperimentPlan::new(5)
            .master_seed(99)
            .engine(EngineOptions::new().with_threads(4))
            .run(&config)?;
        let t100 = result
            .mean_time_to_reach(100.0)
            .map(|t| format!("{t:.1}"))
            .unwrap_or_else(|| "never".to_owned());
        println!("{:<20} {:>14.1} {:>16}", name, result.final_infected.mean, t100);
    }

    println!(
        "\nThe hubs of the power-law graph accelerate early spread relative\n\
         to the degree-homogeneous families; the ring lattice, with its\n\
         long path lengths, is slowest — topology shifts speed, while the\n\
         acceptance curve still pins the plateau."
    );
    Ok(())
}
