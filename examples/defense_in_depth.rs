//! Defense in depth: the paper's future-work item (§6) — combining a
//! response mechanism that *slows* a virus with one that *stops* it.
//!
//! Monitoring throttles fast Virus 3 within minutes but never halts it;
//! a gateway signature scan halts everything but needs hours to deploy a
//! signature. Together, the monitor buys the time the scan needs.
//!
//! ```text
//! cargo run --release --example defense_in_depth
//! ```

use mpvsim::prelude::*;
use mpvsim::stats::render::ascii_chart;

fn main() -> Result<(), ConfigError> {
    let base =
        ScenarioConfig::baseline(VirusProfile::virus3()).with_horizon(SimDuration::from_hours(25));
    let monitoring = Monitoring::with_forced_wait(SimDuration::from_mins(30));
    let scan = SignatureScan { activation_delay: SimDuration::from_hours(6) };

    let arms: Vec<(&str, ResponseConfig)> = vec![
        ("baseline", ResponseConfig::none()),
        ("monitoring only", ResponseConfig::none().with_monitoring(monitoring)),
        ("scan only", ResponseConfig::none().with_signature_scan(scan)),
        (
            "monitoring + scan",
            ResponseConfig::none().with_monitoring(monitoring).with_signature_scan(scan),
        ),
    ];

    let mut curves = Vec::new();
    println!("{:<20} {:>12}", "defense", "infected @25h");
    for (name, response) in arms {
        let config = base.clone().with_response(response);
        let result = ExperimentPlan::new(5)
            .master_seed(31)
            .engine(EngineOptions::new().with_threads(4))
            .run(&config)?;
        println!("{:<20} {:>12.1}", name, result.final_infected.mean);
        curves.push((name.to_owned(), result.mean_series()));
    }

    let refs: Vec<(&str, &TimeSeries)> = curves.iter().map(|(l, s)| (l.as_str(), s)).collect();
    println!("\n{}", ascii_chart(&refs, 70, 16, None));

    println!(
        "The scan alone activates after the virus has already saturated the\n\
         population; with monitoring slowing the outbreak, the same scan\n\
         arrives while the infection is still small — the combination beats\n\
         both parts (paper §6: a slowing mechanism 'could buy time to enable\n\
         activation of a secondary response mechanism')."
    );
    Ok(())
}
