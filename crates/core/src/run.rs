//! Running scenarios: one replication, or a seeded batch with aggregation.

use rand::rngs::StdRng;
use rand::SeedableRng;

use mpvsim_des::seed::derive_stream_seed;
use mpvsim_des::{run_replications_parallel, SimTime, Simulation};
use mpvsim_mobility::MobilityField;
use mpvsim_phonenet::Population;
use mpvsim_stats::{aggregate, AggregateSeries, Summary, TimeSeries};

use crate::config::{ConfigError, ScenarioConfig};
use crate::model::{EpidemicModel, Event, RunStats};
use crate::response::ActivationTimes;
use mpvsim_des::SimDuration;

/// Sub-stream label for topology generation (independent of dynamics).
const TOPOLOGY_STREAM: u64 = 1;

/// The outcome of a single replication.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct RunResult {
    /// Infection count sampled every `sample_step`.
    pub series: TimeSeries,
    /// Cumulative virus-message traffic on the same grid (the extra MMS
    /// load on the provider's network).
    pub traffic: TimeSeries,
    /// Infected phones at the horizon.
    pub final_infected: usize,
    /// Message-flow counters.
    pub stats: RunStats,
    /// When the detectability-clocked mechanisms fired.
    pub activation: ActivationTimes,
    /// The worst gateway transit delay any message saw (`None` when the
    /// gateway has the paper's infinite capacity).
    pub gateway_peak_delay: Option<SimDuration>,
}

/// Aggregated outcome of a replicated experiment.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct ExperimentResult {
    /// Pointwise mean infection curve with a 95 % confidence band.
    pub aggregate: AggregateSeries,
    /// Summary of the final infection counts across replications.
    pub final_infected: Summary,
    /// Each replication's result, in replication order.
    pub runs: Vec<RunResult>,
}

impl ExperimentResult {
    /// The mean infection trajectory.
    pub fn mean_series(&self) -> TimeSeries {
        self.aggregate.mean_series()
    }

    /// Mean time (hours) for the infection to reach `threshold` phones,
    /// over the replications that reached it; `None` if none did.
    pub fn mean_time_to_reach(&self, threshold: f64) -> Option<f64> {
        let times: Vec<f64> =
            self.runs.iter().filter_map(|r| r.series.time_to_reach(threshold)).collect();
        if times.is_empty() {
            None
        } else {
            Some(times.iter().sum::<f64>() / times.len() as f64)
        }
    }
}

/// Runs one replication of `config` with the given seed.
///
/// The contact topology and vulnerability designation draw from a
/// sub-stream derived from `seed`, and the epidemic dynamics from `seed`
/// itself, so a `(config, seed)` pair determines the trajectory exactly.
///
/// # Errors
///
/// Returns [`ConfigError`] when the scenario is invalid.
pub fn run_scenario(config: &ScenarioConfig, seed: u64) -> Result<RunResult, ConfigError> {
    config.validate()?;
    let mut topo_rng = StdRng::seed_from_u64(derive_stream_seed(seed, 0, TOPOLOGY_STREAM));
    let graph = config
        .population
        .topology
        .generate(&mut topo_rng)
        .map_err(|e| ConfigError(format!("topology: {e}")))?;
    let population =
        Population::from_graph(&graph, config.population.vulnerable_fraction, &mut topo_rng);
    let mobility = config.mobility.map(|m| {
        MobilityField::new(m.arena(), population.len(), m.waypoint, &mut topo_rng)
    });

    let model = EpidemicModel::with_mobility(config.clone(), population, mobility);
    let mut sim = Simulation::new(model, seed);
    sim.schedule(SimTime::ZERO, Event::Seed);
    sim.schedule(SimTime::ZERO, Event::Sample);
    sim.run_until(SimTime::ZERO + config.horizon);
    let model = sim.into_model();

    Ok(RunResult {
        final_infected: model.infected_count(),
        stats: *model.stats(),
        activation: *model.activation(),
        gateway_peak_delay: model.transit_queue().map(|q| q.peak_delay()),
        traffic: model.traffic_series().clone(),
        series: model.series().clone(),
    })
}

/// Runs `reps` seeded replications of `config` (in parallel across
/// `threads` workers) and aggregates them.
///
/// Replication `r` uses the seed derived from `(master_seed, r)`; results
/// are identical regardless of `threads`.
///
/// # Errors
///
/// Returns [`ConfigError`] when the scenario is invalid or `reps == 0`.
///
/// # Panics
///
/// Panics if `threads == 0`.
pub fn run_experiment(
    config: &ScenarioConfig,
    reps: u64,
    master_seed: u64,
    threads: usize,
) -> Result<ExperimentResult, ConfigError> {
    config.validate()?;
    if reps == 0 {
        return Err(ConfigError("need at least one replication".to_owned()));
    }
    let runs: Vec<RunResult> = run_replications_parallel(reps, master_seed, threads, |_, seed| {
        run_scenario(config, seed).expect("config validated before the batch")
    });
    let series: Vec<TimeSeries> = runs.iter().map(|r| r.series.clone()).collect();
    let aggregate = aggregate::aggregate(&series).expect("at least one replication");
    let finals: Vec<f64> = runs.iter().map(|r| r.final_infected as f64).collect();
    let final_infected = Summary::of(&finals).expect("at least one replication");
    Ok(ExperimentResult { aggregate, final_infected, runs })
}

/// Outcome of [`run_experiment_adaptive`].
#[derive(Debug, Clone)]
pub struct AdaptiveResult {
    /// The aggregated experiment over however many replications ran.
    pub result: ExperimentResult,
    /// Whether the confidence target was met before `max_reps`.
    pub converged: bool,
}

/// Runs replications in batches of `threads` until the 95 % confidence
/// half-width on the mean final infection count drops to
/// `target_ci_half_width` (or `max_reps` is exhausted).
///
/// Replication `r` always uses the seed derived from `(master_seed, r)`,
/// so for a given outcome sequence the runs are the same as a fixed-size
/// batch of the same length.
///
/// # Errors
///
/// Returns [`ConfigError`] when the scenario is invalid, `min_reps` is 0,
/// or `min_reps > max_reps`.
///
/// # Panics
///
/// Panics if `threads == 0`.
pub fn run_experiment_adaptive(
    config: &ScenarioConfig,
    target_ci_half_width: f64,
    min_reps: u64,
    max_reps: u64,
    master_seed: u64,
    threads: usize,
) -> Result<AdaptiveResult, ConfigError> {
    config.validate()?;
    if min_reps == 0 || min_reps > max_reps {
        return Err(ConfigError(format!(
            "need 1 <= min_reps <= max_reps, got {min_reps}..{max_reps}"
        )));
    }
    let mut runs: Vec<RunResult> = Vec::new();
    let mut acc = mpvsim_stats::RunningSummary::new();
    let mut converged = false;
    while (runs.len() as u64) < max_reps {
        let batch = (threads as u64)
            .max(1)
            .min(max_reps - runs.len() as u64)
            .max(if runs.is_empty() { min_reps.min(max_reps) } else { 1 });
        let start = runs.len() as u64;
        let mut batch_runs: Vec<RunResult> =
            run_replications_parallel(batch, master_seed, threads, |rep, _seed| {
                // Seed from the global replication index so the sequence
                // is independent of the batch boundaries.
                let seed = mpvsim_des::seed::derive_seed(master_seed, start + rep);
                run_scenario(config, seed).expect("config validated before the batch")
            });
        for r in &batch_runs {
            acc.push(r.final_infected as f64);
        }
        runs.append(&mut batch_runs);
        if runs.len() as u64 >= min_reps && acc.ci95_half_width() <= target_ci_half_width {
            converged = true;
            break;
        }
    }
    let series: Vec<TimeSeries> = runs.iter().map(|r| r.series.clone()).collect();
    let aggregate = aggregate::aggregate(&series).expect("at least one replication");
    let finals: Vec<f64> = runs.iter().map(|r| r.final_infected as f64).collect();
    let final_infected = Summary::of(&finals).expect("at least one replication");
    Ok(AdaptiveResult {
        result: ExperimentResult { aggregate, final_infected, runs },
        converged,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PopulationConfig;
    use crate::virus::VirusProfile;
    use mpvsim_des::{DelaySpec, SimDuration};
    use mpvsim_topology::GraphSpec;

    fn small_config() -> ScenarioConfig {
        let mut c = ScenarioConfig::baseline(VirusProfile::virus3());
        c.population = PopulationConfig {
            topology: GraphSpec::erdos_renyi(60, 8.0),
            vulnerable_fraction: 0.8,
        };
        c.behavior.read_delay = DelaySpec::constant(SimDuration::from_mins(5));
        c.horizon = SimDuration::from_hours(6);
        c
    }

    #[test]
    fn run_scenario_produces_full_series() {
        let r = run_scenario(&small_config(), 7).unwrap();
        assert_eq!(r.series.len(), 7, "hourly samples over 6 h inclusive");
        assert!(r.final_infected >= 1);
        assert!(r.stats.messages_sent > 0);
    }

    #[test]
    fn run_scenario_rejects_invalid_config() {
        let mut c = small_config();
        c.initial_infections = 0;
        assert!(run_scenario(&c, 1).is_err());
    }

    #[test]
    fn run_scenario_deterministic() {
        let c = small_config();
        let a = run_scenario(&c, 11).unwrap();
        let b = run_scenario(&c, 11).unwrap();
        assert_eq!(a.series, b.series);
        assert_eq!(a.stats, b.stats);
    }

    #[test]
    fn different_seeds_vary_topology_and_dynamics() {
        let c = small_config();
        let a = run_scenario(&c, 1).unwrap();
        let b = run_scenario(&c, 2).unwrap();
        assert!(a.series != b.series || a.stats != b.stats);
    }

    #[test]
    fn experiment_aggregates_replications() {
        let c = small_config();
        let e = run_experiment(&c, 4, 99, 2).unwrap();
        assert_eq!(e.runs.len(), 4);
        assert_eq!(e.aggregate.replications, 4);
        assert_eq!(e.final_infected.n, 4);
        // The aggregate mean of the final point equals the mean of finals
        // (series all have the same length here).
        let last_mean = *e.aggregate.mean.last().unwrap();
        assert!((last_mean - e.final_infected.mean).abs() < 1e-9);
    }

    #[test]
    fn experiment_parallel_equals_serial() {
        let c = small_config();
        let serial = run_experiment(&c, 3, 5, 1).unwrap();
        let parallel = run_experiment(&c, 3, 5, 3).unwrap();
        assert_eq!(serial.aggregate.mean, parallel.aggregate.mean);
    }

    #[test]
    fn experiment_zero_reps_rejected() {
        assert!(run_experiment(&small_config(), 0, 1, 1).is_err());
    }

    #[test]
    fn traffic_series_is_cumulative_and_monotone() {
        let r = run_scenario(&small_config(), 21).unwrap();
        assert_eq!(r.traffic.len(), r.series.len(), "same sampling grid");
        let vals = r.traffic.values();
        assert!(vals.windows(2).all(|w| w[1] >= w[0]), "cumulative traffic decreased");
        assert_eq!(*vals.last().unwrap() as u64, r.stats.messages_sent);
    }

    #[test]
    fn adaptive_matches_fixed_batch_of_same_length() {
        let c = small_config();
        // An impossible (negative) target forces the runner to max_reps
        // even if early replications happen to agree exactly.
        let adaptive = run_experiment_adaptive(&c, -1.0, 2, 6, 33, 2).unwrap();
        assert!(!adaptive.converged);
        assert_eq!(adaptive.result.runs.len(), 6);
        let fixed = run_experiment(&c, 6, 33, 2).unwrap();
        assert_eq!(adaptive.result.aggregate.mean, fixed.aggregate.mean);
    }

    #[test]
    fn adaptive_stops_early_on_loose_target() {
        let c = small_config();
        let adaptive = run_experiment_adaptive(&c, 1e9, 2, 64, 34, 2).unwrap();
        assert!(adaptive.converged);
        assert!(adaptive.result.runs.len() <= 4, "a huge target should stop immediately");
        assert!(adaptive.result.runs.len() >= 2, "min_reps respected");
    }

    #[test]
    fn adaptive_rejects_bad_rep_bounds() {
        let c = small_config();
        assert!(run_experiment_adaptive(&c, 1.0, 0, 5, 1, 1).is_err());
        assert!(run_experiment_adaptive(&c, 1.0, 6, 5, 1, 1).is_err());
    }

    #[test]
    fn mean_time_to_reach() {
        let c = small_config();
        let e = run_experiment(&c, 3, 17, 1).unwrap();
        let t = e.mean_time_to_reach(1.0);
        assert!(t.is_some(), "every run infects at least the seed");
        assert!(e.mean_time_to_reach(1e9).is_none());
    }
}
