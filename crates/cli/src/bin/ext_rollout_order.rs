//! Deprecated shim: forwards to `mpvsim study ext_rollout_order`.
fn main() {
    mpvsim_cli::commands::deprecated_shim("ext_rollout_order");
}
