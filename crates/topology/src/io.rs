//! Contact-list file format.
//!
//! The paper's pipeline wrote the generated graph to "a contact list
//! output file to be read as input by our Möbius model" (§4.3). This
//! module reproduces that interface so topologies can be generated once,
//! inspected or edited by hand, and replayed across experiments.
//!
//! ## Format
//!
//! Plain text, one phone per line:
//!
//! ```text
//! # mpvsim contact lists v1
//! # nodes: 4
//! 0: 1 2
//! 1: 0
//! 2: 0 3
//! 3: 2
//! ```
//!
//! Lines starting with `#` are comments; the `nodes:` header fixes the
//! population size (isolated phones need no line of their own). Edges
//! must be reciprocal — the reader verifies this and rejects files that
//! violate it.

use std::io::{BufRead, Write};

use crate::error::TopologyError;
use crate::graph::{Graph, NodeId};

/// Writes `graph` in the contact-list format.
///
/// # Errors
///
/// Propagates I/O errors from `out`.
pub fn write_contact_lists<W: Write>(graph: &Graph, mut out: W) -> std::io::Result<()> {
    writeln!(out, "# mpvsim contact lists v1")?;
    writeln!(out, "# nodes: {}", graph.node_count())?;
    for node in graph.nodes() {
        let neighbors = graph.neighbors(node);
        if neighbors.is_empty() {
            continue;
        }
        write!(out, "{}:", node.index())?;
        for n in neighbors {
            write!(out, " {}", n.index())?;
        }
        writeln!(out)?;
    }
    Ok(())
}

/// Renders `graph` in the contact-list format as a `String`.
pub fn to_contact_list_string(graph: &Graph) -> String {
    let mut buf = Vec::new();
    write_contact_lists(graph, &mut buf).expect("writing to a Vec cannot fail");
    String::from_utf8(buf).expect("format is ASCII")
}

/// Reads a graph from the contact-list format.
///
/// # Errors
///
/// Returns [`TopologyError::InvalidParameter`] on syntax errors,
/// out-of-range phone ids, self-loops, or non-reciprocal files, and on
/// underlying I/O failures.
pub fn read_contact_lists<R: BufRead>(input: R) -> Result<Graph, TopologyError> {
    let syntax = |line_no: usize, msg: String| {
        TopologyError::InvalidParameter(format!("line {line_no}: {msg}"))
    };
    let mut nodes: Option<usize> = None;
    let mut edges: Vec<(usize, usize)> = Vec::new();
    for (idx, line) in input.lines().enumerate() {
        let line_no = idx + 1;
        let line =
            line.map_err(|e| TopologyError::InvalidParameter(format!("line {line_no}: I/O: {e}")))?;
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        if let Some(rest) = trimmed.strip_prefix('#') {
            if let Some(n) = rest.trim().strip_prefix("nodes:") {
                let parsed: usize = n
                    .trim()
                    .parse()
                    .map_err(|_| syntax(line_no, format!("bad node count {n:?}")))?;
                nodes = Some(parsed);
            }
            continue;
        }
        let (head, tail) = trimmed
            .split_once(':')
            .ok_or_else(|| syntax(line_no, "expected `<id>: <contacts…>`".to_owned()))?;
        let from: usize =
            head.trim().parse().map_err(|_| syntax(line_no, format!("bad phone id {head:?}")))?;
        for tok in tail.split_whitespace() {
            let to: usize =
                tok.parse().map_err(|_| syntax(line_no, format!("bad contact id {tok:?}")))?;
            edges.push((from, to));
        }
    }
    let n = nodes
        .ok_or_else(|| TopologyError::InvalidParameter("missing `# nodes: N` header".to_owned()))?;

    let mut graph = Graph::with_nodes(n);
    for &(a, b) in &edges {
        if a >= n || b >= n {
            return Err(TopologyError::InvalidParameter(format!(
                "contact {a}-{b} out of range for {n} phones"
            )));
        }
        if a == b {
            return Err(TopologyError::InvalidParameter(format!("self-loop at phone {a}")));
        }
    }
    // Reciprocity: every directed entry must have its mirror.
    let mut sorted: Vec<(usize, usize)> = edges.clone();
    sorted.sort_unstable();
    sorted.dedup();
    for &(a, b) in &sorted {
        if sorted.binary_search(&(b, a)).is_err() {
            return Err(TopologyError::InvalidParameter(format!(
                "contact lists not reciprocal: {a} lists {b} but not vice versa"
            )));
        }
    }
    for (a, b) in sorted {
        if a < b {
            graph.add_edge(NodeId(a), NodeId(b));
        }
    }
    Ok(graph)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::GraphSpec;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sample_graph() -> Graph {
        let mut g = Graph::with_nodes(4);
        g.add_edge(NodeId(0), NodeId(1));
        g.add_edge(NodeId(0), NodeId(2));
        g.add_edge(NodeId(2), NodeId(3));
        g
    }

    #[test]
    fn writes_expected_format() {
        let text = to_contact_list_string(&sample_graph());
        assert!(text.starts_with("# mpvsim contact lists v1\n# nodes: 4\n"));
        assert!(text.contains("0: 1 2\n"));
        assert!(text.contains("3: 2\n"));
    }

    #[test]
    fn roundtrip_preserves_graph() {
        let g = sample_graph();
        let text = to_contact_list_string(&g);
        let back = read_contact_lists(text.as_bytes()).expect("roundtrip");
        assert_eq!(back.node_count(), g.node_count());
        assert_eq!(back.edge_count(), g.edge_count());
        for v in g.nodes() {
            let mut a: Vec<_> = g.neighbors(v).to_vec();
            let mut b: Vec<_> = back.neighbors(v).to_vec();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b, "neighborhood of {v} changed");
        }
        assert!(back.validate().is_ok());
    }

    #[test]
    fn roundtrip_generated_power_law() {
        let mut rng = StdRng::seed_from_u64(5);
        let g = GraphSpec::power_law(200, 12.0).generate(&mut rng).unwrap();
        let back = read_contact_lists(to_contact_list_string(&g).as_bytes()).unwrap();
        assert_eq!(back.edge_count(), g.edge_count());
        assert!(back.validate().is_ok());
    }

    #[test]
    fn isolated_nodes_survive_roundtrip() {
        let g = Graph::with_nodes(7); // no edges at all
        let back = read_contact_lists(to_contact_list_string(&g).as_bytes()).unwrap();
        assert_eq!(back.node_count(), 7);
        assert_eq!(back.edge_count(), 0);
    }

    #[test]
    fn missing_header_rejected() {
        let err = read_contact_lists("0: 1\n1: 0\n".as_bytes()).unwrap_err();
        assert!(err.to_string().contains("nodes"), "{err}");
    }

    #[test]
    fn non_reciprocal_rejected() {
        let text = "# nodes: 3\n0: 1\n";
        let err = read_contact_lists(text.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("reciprocal"), "{err}");
    }

    #[test]
    fn self_loop_rejected() {
        let text = "# nodes: 2\n0: 0\n";
        let err = read_contact_lists(text.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("self-loop"), "{err}");
    }

    #[test]
    fn out_of_range_rejected() {
        let text = "# nodes: 2\n0: 5\n5: 0\n";
        let err = read_contact_lists(text.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("out of range"), "{err}");
    }

    #[test]
    fn bad_syntax_reports_line_numbers() {
        let text = "# nodes: 2\nnot-a-line\n";
        let err = read_contact_lists(text.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("line 2"), "{err}");

        let text = "# nodes: 2\n0: x\n";
        let err = read_contact_lists(text.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("line 2"), "{err}");

        let text = "# nodes: zebra\n";
        let err = read_contact_lists(text.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("bad node count"), "{err}");
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let text = "# mpvsim contact lists v1\n\n# nodes: 2\n# a comment\n0: 1\n1: 0\n\n";
        let g = read_contact_lists(text.as_bytes()).unwrap();
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn duplicate_entries_collapse() {
        let text = "# nodes: 2\n0: 1 1\n1: 0 0\n";
        let g = read_contact_lists(text.as_bytes()).unwrap();
        assert_eq!(g.edge_count(), 1);
    }
}
