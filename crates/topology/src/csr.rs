//! Compressed-sparse-row adjacency storage for large populations.
//!
//! [`Graph`] stores one heap-allocated `Vec<NodeId>` per node — fine at the
//! paper's 1,000 phones, but at 10^6 nodes the per-vector headers, the
//! 8-byte node ids and the allocator churn dominate memory. [`CsrGraph`]
//! packs the same reciprocal adjacency into two flat `u32` arrays:
//!
//! ```text
//! offsets: [0, d0, d0+d1, ...]          (n + 1 entries)
//! targets: [neighbours of 0 | neighbours of 1 | ...]  (2·E entries)
//! ```
//!
//! so a 10^6-node, mean-degree-8 graph costs ~36 MB instead of hundreds.
//! The neighbour order within each row is identical to the order
//! [`Graph::add_edge`] would have produced for the same edge stream, which
//! is what keeps simulation trajectories bit-identical across the two
//! layouts (contact-list cursors walk rows in storage order).

use serde::{Deserialize, Serialize};

use crate::graph::{Graph, NodeId};

/// An undirected simple graph in compressed-sparse-row form.
///
/// Node ids are dense `u32` indices; rows hold each node's neighbours in
/// insertion order. Construct one with [`CsrGraph::from_graph`] or
/// [`crate::GraphSpec::generate_csr`] (which never materializes a
/// per-node `Vec` layout at all).
///
/// ```rust
/// use mpvsim_topology::{CsrGraph, Graph, NodeId};
///
/// let mut g = Graph::with_nodes(3);
/// g.add_edge(NodeId(0), NodeId(1));
/// g.add_edge(NodeId(0), NodeId(2));
/// let csr = CsrGraph::from_graph(&g);
/// assert_eq!(csr.neighbors(0), &[1, 2]);
/// assert_eq!(csr.degree(1), 1);
/// assert_eq!(csr.edge_count(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CsrGraph {
    /// Row boundaries; `offsets[i]..offsets[i + 1]` indexes node `i`'s row.
    offsets: Vec<u32>,
    /// Concatenated neighbour lists (2·`edge_count` entries).
    targets: Vec<u32>,
    /// Number of undirected edges.
    edge_count: usize,
}

impl CsrGraph {
    /// Builds a CSR graph from raw parts. Internal; callers go through
    /// [`CsrGraph::from_graph`] or `GraphSpec::generate_csr`.
    pub(crate) fn from_parts(offsets: Vec<u32>, targets: Vec<u32>, edge_count: usize) -> Self {
        CsrGraph { offsets, targets, edge_count }
    }

    /// Packs an adjacency-list [`Graph`] into CSR form, preserving the
    /// per-node neighbour order exactly.
    pub fn from_graph(graph: &Graph) -> Self {
        let n = graph.node_count();
        assert!(n < u32::MAX as usize, "CSR node ids are u32");
        let directed: usize = 2 * graph.edge_count();
        assert!(directed < u32::MAX as usize, "CSR offsets are u32");
        let mut offsets = Vec::with_capacity(n + 1);
        let mut targets = Vec::with_capacity(directed);
        offsets.push(0u32);
        for i in 0..n {
            for &NodeId(j) in graph.neighbors(NodeId(i)) {
                targets.push(j as u32);
            }
            offsets.push(targets.len() as u32);
        }
        CsrGraph { offsets, targets, edge_count: graph.edge_count() }
    }

    /// Expands back to an adjacency-list [`Graph`] (test / analysis aid).
    pub fn to_graph(&self) -> Graph {
        let mut g = Graph::with_nodes(self.node_count());
        for u in 0..self.node_count() as u32 {
            for &v in self.neighbors(u) {
                if u < v {
                    g.add_edge(NodeId(u as usize), NodeId(v as usize));
                }
            }
        }
        g
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of undirected edges.
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// The neighbours of `node` in insertion order.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn neighbors(&self, node: u32) -> &[u32] {
        let lo = self.offsets[node as usize] as usize;
        let hi = self.offsets[node as usize + 1] as usize;
        &self.targets[lo..hi]
    }

    /// The degree (contact-list size) of `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn degree(&self, node: u32) -> usize {
        (self.offsets[node as usize + 1] - self.offsets[node as usize]) as usize
    }

    /// Mean degree over all nodes (0 for an empty graph).
    pub fn mean_degree(&self) -> f64 {
        if self.node_count() == 0 {
            0.0
        } else {
            2.0 * self.edge_count as f64 / self.node_count() as f64
        }
    }

    /// Resident heap bytes of the adjacency arrays (the bytes/phone
    /// denominator reported by perfsuite).
    pub fn resident_bytes(&self) -> usize {
        std::mem::size_of_val(self.offsets.as_slice())
            + std::mem::size_of_val(self.targets.as_slice())
    }

    /// Checks the reciprocal-contact-list invariant and simplicity, like
    /// [`Graph::validate`].
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first violation found.
    pub fn validate(&self) -> Result<(), String> {
        let n = self.node_count();
        if self.offsets[0] != 0 {
            return Err("offsets must start at 0".into());
        }
        for i in 0..n {
            if self.offsets[i] > self.offsets[i + 1] {
                return Err(format!("offsets not monotone at node {i}"));
            }
        }
        if *self.offsets.last().unwrap() as usize != self.targets.len() {
            return Err("final offset disagrees with targets length".into());
        }
        if self.targets.len() != 2 * self.edge_count {
            return Err(format!(
                "edge_count {} inconsistent with {} directed entries",
                self.edge_count,
                self.targets.len()
            ));
        }
        for u in 0..n as u32 {
            let row = self.neighbors(u);
            for &v in row {
                if v as usize >= n {
                    return Err(format!("node {u} links to out-of-range node {v}"));
                }
                if v == u {
                    return Err(format!("self-loop at node {u}"));
                }
                if !self.neighbors(v).contains(&u) {
                    return Err(format!("edge {u}->{v} not reciprocated"));
                }
            }
            let mut sorted: Vec<u32> = row.to_vec();
            sorted.sort_unstable();
            if sorted.windows(2).any(|w| w[0] == w[1]) {
                return Err(format!("parallel edge at node {u}"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_graph() -> Graph {
        let mut g = Graph::with_nodes(5);
        g.add_edge(NodeId(0), NodeId(1));
        g.add_edge(NodeId(0), NodeId(3));
        g.add_edge(NodeId(2), NodeId(1));
        g.add_edge(NodeId(4), NodeId(0));
        g
    }

    #[test]
    fn from_graph_preserves_rows_and_counts() {
        let g = sample_graph();
        let csr = CsrGraph::from_graph(&g);
        assert_eq!(csr.node_count(), 5);
        assert_eq!(csr.edge_count(), 4);
        for i in 0..5 {
            let want: Vec<u32> = g.neighbors(NodeId(i)).iter().map(|v| v.0 as u32).collect();
            assert_eq!(csr.neighbors(i as u32), want.as_slice(), "row {i}");
            assert_eq!(csr.degree(i as u32), g.degree(NodeId(i)));
        }
        assert!((csr.mean_degree() - g.mean_degree()).abs() < 1e-12);
        assert!(csr.validate().is_ok());
    }

    #[test]
    fn round_trips_through_graph() {
        let g = sample_graph();
        let csr = CsrGraph::from_graph(&g);
        let back = csr.to_graph();
        assert_eq!(back.edge_count(), g.edge_count());
        for i in 0..5 {
            let mut a: Vec<_> = g.neighbors(NodeId(i)).to_vec();
            let mut b: Vec<_> = back.neighbors(NodeId(i)).to_vec();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b);
        }
    }

    #[test]
    fn isolated_nodes_have_empty_rows() {
        let csr = CsrGraph::from_graph(&Graph::with_nodes(4));
        assert_eq!(csr.edge_count(), 0);
        for i in 0..4 {
            assert!(csr.neighbors(i).is_empty());
            assert_eq!(csr.degree(i), 0);
        }
        assert!(csr.validate().is_ok());
        assert_eq!(csr.mean_degree(), 0.0);
    }

    #[test]
    fn resident_bytes_counts_both_arrays() {
        let csr = CsrGraph::from_graph(&sample_graph());
        // 6 offsets + 8 directed entries, 4 bytes each.
        assert_eq!(csr.resident_bytes(), (6 + 8) * 4);
    }

    #[test]
    fn validate_detects_missing_reciprocal() {
        let csr = CsrGraph::from_parts(vec![0, 1, 1], vec![1], 0);
        assert!(csr.validate().is_err());
    }
}
