//! Ablation studies for the reproduction's own design choices.
//!
//! The paper leaves several model parameters unstated (read-delay
//! distribution, the "detectable level", the contact-graph family, Virus
//! 2's quota-period alignment). DESIGN.md documents the choices made
//! here; these experiments quantify how sensitive the headline results
//! are to each one.
//!
//! | ablation | design choice probed |
//! |---|---|
//! | [`ablation_read_delay`] | exponential read delay, mean 1 h |
//! | [`ablation_detect_threshold`] | detectability at 10 observed infected messages |
//! | [`ablation_topology`] | power-law contact graph (vs. ER / small-world / lattice) |
//! | [`ablation_day_alignment`] | Virus 2's global 24 h burst boundaries |
//! | [`ablation_acceptance_factor`] | AF = 0.468 (eventual acceptance 0.40) |

use mpvsim_des::{DelaySpec, SimDuration};
use mpvsim_topology::GraphSpec;

use crate::config::{ConfigError, PopulationConfig, ScenarioConfig};
use crate::figures::{FigureOptions, LabeledResult};
use crate::response::{ResponseConfig, SignatureScan};
use crate::virus::VirusProfile;

fn run_labeled(
    label: impl Into<String>,
    config: &ScenarioConfig,
    opts: &FigureOptions,
) -> Result<LabeledResult, ConfigError> {
    let result = opts.plan().run(config)?;
    Ok(LabeledResult { label: label.into(), result })
}

fn base(virus: VirusProfile, opts: &FigureOptions) -> ScenarioConfig {
    ScenarioConfig::baseline(virus)
        .with_population(PopulationConfig::paper_default(opts.population))
}

/// How the read-delay mean shifts each virus's timescale. The default
/// (1 h) balances Virus 3's "150 infected within hours" against the
/// day-scale spread of Viruses 1 and 4.
///
/// # Errors
///
/// Propagates [`ConfigError`] from scenario validation.
pub fn ablation_read_delay(opts: &FigureOptions) -> Result<Vec<LabeledResult>, ConfigError> {
    let mut out = Vec::new();
    for virus in [VirusProfile::virus1(), VirusProfile::virus3()] {
        for mean_mins in [15u64, 60, 240] {
            let name = virus.name.clone();
            let mut config = base(virus.clone(), opts);
            config.behavior.read_delay = DelaySpec::exponential(SimDuration::from_mins(mean_mins));
            out.push(run_labeled(format!("{name} read={mean_mins}min"), &config, opts)?);
        }
        // A heavier-tailed human-reaction shape at the same central
        // tendency: does the distribution family (not just its mean)
        // matter?
        let name = virus.name.clone();
        let mut config = base(virus.clone(), opts);
        config.behavior.read_delay = DelaySpec::log_normal(SimDuration::from_mins(42), 1.0);
        out.push(run_labeled(format!("{name} read=lognormal"), &config, opts)?);
    }
    Ok(out)
}

/// How the detectability threshold (infected messages the gateways must
/// observe before response clocks start) shifts signature-scan
/// effectiveness against Virus 1.
///
/// # Errors
///
/// Propagates [`ConfigError`] from scenario validation.
pub fn ablation_detect_threshold(opts: &FigureOptions) -> Result<Vec<LabeledResult>, ConfigError> {
    let mut out = vec![run_labeled("Baseline", &base(VirusProfile::virus1(), opts), opts)?];
    for threshold in [1u64, 10, 100] {
        let mut config = base(VirusProfile::virus1(), opts).with_response(
            ResponseConfig::none().with_signature_scan(SignatureScan {
                activation_delay: SimDuration::from_hours(6),
            }),
        );
        config.detect_threshold = threshold;
        out.push(run_labeled(format!("detect at {threshold} msgs"), &config, opts)?);
    }
    Ok(out)
}

/// How the contact-graph family changes Virus 1's spread at equal mean
/// degree — the paper's §4.3 power-law assumption quantified.
///
/// # Errors
///
/// Propagates [`ConfigError`] from scenario validation.
pub fn ablation_topology(opts: &FigureOptions) -> Result<Vec<LabeledResult>, ConfigError> {
    let n = opts.population;
    let k = 80usize.min(n.saturating_sub(2)) & !1usize; // even, < n
    let mean = k as f64;
    let families: Vec<(String, GraphSpec)> = vec![
        ("power-law (paper)".to_owned(), GraphSpec::power_law(n, mean)),
        ("Erdős–Rényi".to_owned(), GraphSpec::erdos_renyi(n, mean)),
        ("Watts–Strogatz".to_owned(), GraphSpec::watts_strogatz(n, k, 0.1)),
        ("ring lattice".to_owned(), GraphSpec::ring(n, k)),
    ];
    families
        .into_iter()
        .map(|(label, topology)| {
            let mut config = base(VirusProfile::virus1(), opts);
            config.population = PopulationConfig { topology, vulnerable_fraction: 0.8 };
            run_labeled(label, &config, opts)
        })
        .collect()
}

/// Virus 2 with the reproduction's global 24 h burst boundaries versus a
/// literal reading where each phone's quota day starts at its own
/// infection instant. Only the global alignment produces Figure 1's
/// flat-between-steps curve; per-infection alignment cascades within the
/// first day.
///
/// # Errors
///
/// Propagates [`ConfigError`] from scenario validation.
pub fn ablation_day_alignment(opts: &FigureOptions) -> Result<Vec<LabeledResult>, ConfigError> {
    let global = base(VirusProfile::virus2(), opts);
    let mut per_infection = base(VirusProfile::virus2(), opts);
    per_infection.virus.global_day_bursts = false;
    Ok(vec![
        run_labeled("global day bursts (paper shape)", &global, opts)?,
        run_labeled("per-infection alignment", &per_infection, opts)?,
    ])
}

/// Virus 4's rate-matched schedule (our default substitution) against
/// its literal piggyback semantics riding real legitimate traffic, at
/// the same nominal message rate. If the curves agree, the substitution
/// documented in DESIGN.md preserved the behaviour it replaced.
///
/// # Errors
///
/// Propagates [`ConfigError`] from scenario validation.
pub fn ablation_virus4_semantics(opts: &FigureOptions) -> Result<Vec<LabeledResult>, ConfigError> {
    // Both arms get the same legitimate traffic so the only difference
    // is how the virus paces itself.
    let legit =
        crate::behavior::BehaviorConfig::with_legitimate_traffic(SimDuration::from_hours(4));
    let mut rate_paced = base(VirusProfile::virus4(), opts);
    rate_paced.behavior = legit;
    let mut piggyback = base(VirusProfile::virus4_piggyback(), opts);
    piggyback.behavior = legit;
    Ok(vec![
        run_labeled("rate-paced (default substitution)", &rate_paced, opts)?,
        run_labeled("piggyback (literal §4.2 semantics)", &piggyback, opts)?,
    ])
}

/// How the acceptance factor moves the plateau: the paper's 0.468
/// (eventual ≈ 0.40) against half and double rates.
///
/// # Errors
///
/// Propagates [`ConfigError`] from scenario validation.
pub fn ablation_acceptance_factor(opts: &FigureOptions) -> Result<Vec<LabeledResult>, ConfigError> {
    let mut out = Vec::new();
    for af in [0.234, 0.468, 0.936] {
        let mut config = base(VirusProfile::virus3(), opts);
        config.behavior.acceptance = crate::behavior::AcceptanceModel::new(af);
        let eventual = config.behavior.acceptance.eventual_acceptance();
        out.push(run_labeled(format!("AF={af} (eventual {eventual:.2})"), &config, opts)?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run::EngineOptions;

    fn tiny() -> FigureOptions {
        FigureOptions {
            reps: 1,
            master_seed: 3,
            engine: EngineOptions::new(),
            population: 40,
            ..FigureOptions::default()
        }
    }

    #[test]
    fn read_delay_labels() {
        let out = ablation_read_delay(&tiny()).unwrap();
        let labels: Vec<&str> = out.iter().map(|r| r.label.as_str()).collect();
        assert_eq!(
            labels,
            vec![
                "Virus 1 read=15min",
                "Virus 1 read=60min",
                "Virus 1 read=240min",
                "Virus 1 read=lognormal",
                "Virus 3 read=15min",
                "Virus 3 read=60min",
                "Virus 3 read=240min",
                "Virus 3 read=lognormal"
            ]
        );
    }

    #[test]
    fn detect_threshold_has_baseline_plus_three() {
        let out = ablation_detect_threshold(&tiny()).unwrap();
        assert_eq!(out.len(), 4);
        assert_eq!(out[0].label, "Baseline");
    }

    #[test]
    fn topology_families_run_at_any_population() {
        let out = ablation_topology(&tiny()).unwrap();
        assert_eq!(out.len(), 4);
        for r in &out {
            assert!(r.result.final_infected.mean >= 1.0, "{}: no infections", r.label);
        }
    }

    #[test]
    fn day_alignment_two_arms() {
        let out = ablation_day_alignment(&tiny()).unwrap();
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn virus4_semantics_two_arms_and_piggyback_actually_rides() {
        let opts = FigureOptions {
            reps: 1,
            master_seed: 8,
            engine: EngineOptions::new(),
            population: 60,
            ..FigureOptions::default()
        };
        let out = ablation_virus4_semantics(&opts).unwrap();
        assert_eq!(out.len(), 2);
        let piggyback_sends: u64 = out[1].result.runs.iter().map(|r| r.stats.piggyback_sends).sum();
        assert!(piggyback_sends > 0, "the piggyback arm must ride the legit traffic");
    }

    #[test]
    fn acceptance_factor_plateaus_ordered() {
        let opts = FigureOptions {
            reps: 2,
            master_seed: 5,
            engine: EngineOptions::new().with_threads(2),
            population: 120,
            ..FigureOptions::default()
        };
        let out = ablation_acceptance_factor(&opts).unwrap();
        let finals: Vec<f64> = out.iter().map(|r| r.result.final_infected.mean).collect();
        assert!(
            finals[0] < finals[1] && finals[1] < finals[2],
            "plateau must rise with the acceptance factor: {finals:?}"
        );
    }
}
