//! Runs the gateway-congestion extension study: Virus 3 against finite
//! MMS gateway capacity (the paper assumes infinite capacity), reporting
//! both the infection outcome and the worst transit delay the gateway
//! inflicted on its users.
use mpvsim_core::figures::congestion_study;

fn main() {
    let opts = match mpvsim_cli::parse_options(std::env::args().skip(1))
        .and_then(|cli| cli.figure_with_observer())
    {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };
    eprintln!("running gateway congestion study …");
    match congestion_study(&opts) {
        Ok(results) => {
            println!("== Extension — Gateway Congestion (Virus 3 vs finite MMS capacity) ==\n");
            println!(
                "{:<28} {:>10} {:>10} {:>22}",
                "capacity", "infected", "t½ (h)", "peak transit delay"
            );
            for r in &results {
                let t_half = r
                    .result
                    .mean_time_to_reach(r.result.final_infected.mean / 2.0)
                    .map(|t| format!("{t:.1}"))
                    .unwrap_or_else(|| "-".to_owned());
                let peak = r
                    .result
                    .runs
                    .iter()
                    .filter_map(|run| run.gateway_peak_delay)
                    .max()
                    .map(|d| d.to_string())
                    .unwrap_or_else(|| "0 (infinite)".to_owned());
                println!(
                    "{:<28} {:>10.1} {:>10} {:>22}",
                    r.label, r.result.final_infected.mean, t_half, peak
                );
            }
            println!(
                "\nThe virus outruns its own congestion: by the time its flood\n\
                 saturates the gateway, the first-offer wave that does the real\n\
                 damage has already been delivered — but every user of the network\n\
                 is left staring at the transit delay in the last column."
            );
        }
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(1);
        }
    }
}
