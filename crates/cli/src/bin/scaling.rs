//! Regenerates the §5.3 prose claim: results scale from 1000 to 2000
//! phones.
fn main() {
    mpvsim_cli::figure_main(
        "§5.3 — Population Scaling Study (1000 vs 2000 phones)",
        mpvsim_core::figures::scaling_study,
    );
}
