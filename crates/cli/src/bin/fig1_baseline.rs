//! Deprecated shim: forwards to `mpvsim study fig1_baseline`.
fn main() {
    mpvsim_cli::commands::deprecated_shim("fig1_baseline");
}
