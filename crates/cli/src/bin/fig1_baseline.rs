//! Regenerates Figure 1: baseline infection curves for all four viruses,
//! no response mechanisms.
fn main() {
    mpvsim_cli::figure_main(
        "Figure 1 — Baseline Infection Curves without Response Mechanisms",
        mpvsim_core::figures::fig1_baseline,
    );
}
