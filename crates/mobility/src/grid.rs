//! A uniform-grid spatial index for radius queries.
//!
//! Proximity (Bluetooth-range) queries happen for every infected phone
//! on every mobility tick; a uniform grid with cell size = query radius
//! answers each query by scanning at most 9 cells.

use crate::arena::{Arena, Point};

/// A uniform grid over an arena, holding node indices bucketed by cell.
///
/// Build once per tick with [`SpatialGrid::build`], then query with
/// [`SpatialGrid::within_radius`]. The cell size equals the query radius
/// the grid was built for, so a radius query never needs to look beyond
/// the 3×3 cell neighbourhood.
#[derive(Debug, Clone)]
pub struct SpatialGrid {
    cell: f64,
    cols: usize,
    rows: usize,
    buckets: Vec<Vec<usize>>,
    radius: f64,
}

impl SpatialGrid {
    /// Builds a grid for querying at exactly `radius` meters.
    ///
    /// # Panics
    ///
    /// Panics if `radius` is not positive and finite, or if any position
    /// lies outside the arena.
    pub fn build(arena: &Arena, positions: &[Point], radius: f64) -> Self {
        assert!(radius.is_finite() && radius > 0.0, "query radius must be positive");
        let cell = radius;
        let cols = (arena.width() / cell).ceil().max(1.0) as usize;
        let rows = (arena.height() / cell).ceil().max(1.0) as usize;
        let mut grid =
            SpatialGrid { cell, cols, rows, buckets: vec![Vec::new(); cols * rows], radius };
        for (i, &p) in positions.iter().enumerate() {
            assert!(arena.contains(p), "position {p:?} outside the arena");
            let b = grid.bucket_of(p);
            grid.buckets[b].push(i);
        }
        grid
    }

    fn cell_coords(&self, p: Point) -> (usize, usize) {
        let cx = ((p.x / self.cell) as usize).min(self.cols - 1);
        let cy = ((p.y / self.cell) as usize).min(self.rows - 1);
        (cx, cy)
    }

    fn bucket_of(&self, p: Point) -> usize {
        let (cx, cy) = self.cell_coords(p);
        cy * self.cols + cx
    }

    /// All node indices whose position is within the build radius of
    /// `center` (excluding `exclude`, typically the querying node
    /// itself). `positions` must be the same slice the grid was built
    /// from.
    pub fn within_radius(
        &self,
        positions: &[Point],
        center: Point,
        exclude: Option<usize>,
    ) -> Vec<usize> {
        let (cx, cy) = self.cell_coords(center);
        let r2 = self.radius * self.radius;
        let mut out = Vec::new();
        let x_lo = cx.saturating_sub(1);
        let y_lo = cy.saturating_sub(1);
        let x_hi = (cx + 1).min(self.cols - 1);
        let y_hi = (cy + 1).min(self.rows - 1);
        for gy in y_lo..=y_hi {
            for gx in x_lo..=x_hi {
                for &i in &self.buckets[gy * self.cols + gx] {
                    if Some(i) == exclude {
                        continue;
                    }
                    if positions[i].distance_squared(center) <= r2 {
                        out.push(i);
                    }
                }
            }
        }
        out
    }

    /// Every unordered pair `(i, j)` with `i < j` within the build
    /// radius of each other.
    pub fn all_pairs(&self, positions: &[Point]) -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        for (i, &p) in positions.iter().enumerate() {
            for j in self.within_radius(positions, p, Some(i)) {
                if i < j {
                    out.push((i, j));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn arena() -> Arena {
        Arena::new(100.0, 100.0).unwrap()
    }

    fn brute_force(
        positions: &[Point],
        center: Point,
        radius: f64,
        exclude: Option<usize>,
    ) -> Vec<usize> {
        positions
            .iter()
            .enumerate()
            .filter(|&(i, p)| Some(i) != exclude && p.distance(center) <= radius)
            .map(|(i, _)| i)
            .collect()
    }

    #[test]
    fn finds_close_misses_far() {
        let positions = vec![
            Point::new(10.0, 10.0),
            Point::new(15.0, 10.0), // 5 m from #0
            Point::new(40.0, 40.0), // far
        ];
        let g = SpatialGrid::build(&arena(), &positions, 10.0);
        let near = g.within_radius(&positions, positions[0], Some(0));
        assert_eq!(near, vec![1]);
    }

    #[test]
    fn boundary_distance_inclusive() {
        let positions = vec![Point::new(0.0, 0.0), Point::new(10.0, 0.0)];
        let g = SpatialGrid::build(&arena(), &positions, 10.0);
        assert_eq!(g.within_radius(&positions, positions[0], Some(0)), vec![1]);
    }

    #[test]
    fn cross_cell_neighbours_found() {
        // Two points in adjacent cells but within the radius.
        let positions = vec![Point::new(9.9, 9.9), Point::new(10.1, 10.1)];
        let g = SpatialGrid::build(&arena(), &positions, 10.0);
        assert_eq!(g.within_radius(&positions, positions[0], Some(0)), vec![1]);
    }

    #[test]
    fn all_pairs_unique_and_symmetric() {
        let mut rng = StdRng::seed_from_u64(1);
        let a = arena();
        let positions: Vec<Point> = (0..100).map(|_| a.random_point(&mut rng)).collect();
        let g = SpatialGrid::build(&a, &positions, 7.5);
        let pairs = g.all_pairs(&positions);
        for &(i, j) in &pairs {
            assert!(i < j);
            assert!(positions[i].distance(positions[j]) <= 7.5);
        }
        // No duplicates.
        let mut sorted = pairs.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), pairs.len());
    }

    #[test]
    #[should_panic(expected = "radius must be positive")]
    fn zero_radius_rejected() {
        let _ = SpatialGrid::build(&arena(), &[], 0.0);
    }

    #[test]
    #[should_panic(expected = "outside the arena")]
    fn out_of_arena_position_rejected() {
        let _ = SpatialGrid::build(&arena(), &[Point::new(500.0, 0.0)], 10.0);
    }

    #[test]
    fn empty_positions_ok() {
        let g = SpatialGrid::build(&arena(), &[], 5.0);
        assert!(g.all_pairs(&[]).is_empty());
    }

    #[test]
    fn radius_larger_than_arena() {
        let positions = vec![Point::new(0.0, 0.0), Point::new(100.0, 100.0)];
        let g = SpatialGrid::build(&arena(), &positions, 500.0);
        assert_eq!(g.all_pairs(&positions), vec![(0, 1)]);
    }

    proptest! {
        /// Grid query ≡ brute force, for arbitrary point sets and radii.
        #[test]
        fn prop_matches_brute_force(
            seed in 0u64..500,
            n in 1usize..80,
            radius in 1.0f64..40.0,
        ) {
            let a = arena();
            let mut rng = StdRng::seed_from_u64(seed);
            let positions: Vec<Point> = (0..n).map(|_| a.random_point(&mut rng)).collect();
            let g = SpatialGrid::build(&a, &positions, radius);
            for (i, &p) in positions.iter().enumerate() {
                let mut got = g.within_radius(&positions, p, Some(i));
                let mut want = brute_force(&positions, p, radius, Some(i));
                got.sort_unstable();
                want.sort_unstable();
                prop_assert_eq!(&got, &want, "mismatch at node {} radius {}", i, radius);
            }
        }
    }
}
