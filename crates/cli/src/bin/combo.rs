//! Regenerates the §6 future-work study: combining monitoring with a
//! signature scan against fast Virus 3.
fn main() {
    mpvsim_cli::figure_main(
        "§6 — Combined Mechanisms: Monitoring + Signature Scan (Virus 3)",
        mpvsim_core::figures::combo_study,
    );
}
