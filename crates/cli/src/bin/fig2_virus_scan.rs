//! Regenerates Figure 2: gateway virus scan vs. activation delay
//! (Virus 1).
fn main() {
    mpvsim_cli::figure_main(
        "Figure 2 — Virus Scan: Varying the Activation Time Delay (Virus 1)",
        mpvsim_core::figures::fig2_virus_scan,
    );
}
