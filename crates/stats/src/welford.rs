//! Welford's online algorithm: numerically stable running mean/variance.
//!
//! Used by the adaptive replication runner, which keeps adding
//! replications until the confidence interval on the final infection
//! count is tight enough — without storing or re-scanning every sample.

use serde::{Deserialize, Serialize};

use crate::summary::Z_95;

/// A running mean/variance accumulator (Welford's algorithm).
///
/// ```rust
/// use mpvsim_stats::welford::RunningSummary;
///
/// let mut acc = RunningSummary::new();
/// for x in [2.0, 4.0, 6.0] {
///     acc.push(x);
/// }
/// assert_eq!(acc.n(), 3);
/// assert_eq!(acc.mean(), 4.0);
/// assert_eq!(acc.variance(), 4.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct RunningSummary {
    n: u64,
    mean: f64,
    m2: f64,
}

impl RunningSummary {
    /// An empty accumulator.
    pub fn new() -> Self {
        RunningSummary::default()
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Number of observations so far.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// Running mean (0 when empty).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Unbiased sample variance (0 when `n < 2`).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Half-width of the normal-approximation 95 % confidence interval on
    /// the mean (0 when `n < 2`).
    pub fn ci95_half_width(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            Z_95 * (self.variance() / self.n as f64).sqrt()
        }
    }

    /// Merges another accumulator into this one (Chan's parallel
    /// variant), as if every observation had been pushed here.
    pub fn merge(&mut self, other: &RunningSummary) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n_total = self.n + other.n;
        let delta = other.mean - self.mean;
        let mean = self.mean + delta * other.n as f64 / n_total as f64;
        let m2 =
            self.m2 + other.m2 + delta * delta * (self.n as f64 * other.n as f64) / n_total as f64;
        *self = RunningSummary { n: n_total, mean, m2 };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::summary::Summary;
    use proptest::prelude::*;

    #[test]
    fn empty_accumulator() {
        let acc = RunningSummary::new();
        assert_eq!(acc.n(), 0);
        assert_eq!(acc.mean(), 0.0);
        assert_eq!(acc.variance(), 0.0);
        assert_eq!(acc.ci95_half_width(), 0.0);
    }

    #[test]
    fn single_observation() {
        let mut acc = RunningSummary::new();
        acc.push(7.5);
        assert_eq!(acc.n(), 1);
        assert_eq!(acc.mean(), 7.5);
        assert_eq!(acc.variance(), 0.0);
    }

    #[test]
    fn matches_batch_summary() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut acc = RunningSummary::new();
        for &x in &xs {
            acc.push(x);
        }
        let batch = Summary::of(&xs).unwrap();
        assert!((acc.mean() - batch.mean).abs() < 1e-12);
        assert!((acc.variance() - batch.variance).abs() < 1e-12);
        assert!((acc.ci95_half_width() - batch.ci95_half_width).abs() < 1e-12);
    }

    #[test]
    fn numerically_stable_with_large_offsets() {
        // A classic catastrophic-cancellation case for the naive
        // sum-of-squares formula.
        let offset = 1e9;
        let mut acc = RunningSummary::new();
        for x in [offset + 4.0, offset + 7.0, offset + 13.0, offset + 16.0] {
            acc.push(x);
        }
        assert!((acc.mean() - (offset + 10.0)).abs() < 1e-3);
        assert!((acc.variance() - 30.0).abs() < 1e-6, "variance {}", acc.variance());
    }

    #[test]
    fn merge_handles_empty_sides() {
        let mut a = RunningSummary::new();
        let mut b = RunningSummary::new();
        b.push(3.0);
        a.merge(&b);
        assert_eq!(a.n(), 1);
        assert_eq!(a.mean(), 3.0);
        let empty = RunningSummary::new();
        a.merge(&empty);
        assert_eq!(a.n(), 1);
    }

    #[test]
    fn merge_of_two_empties_stays_empty() {
        let mut a = RunningSummary::new();
        a.merge(&RunningSummary::new());
        assert_eq!(a.n(), 0);
        assert_eq!(a.mean(), 0.0);
        assert_eq!(a.variance(), 0.0);
        assert_eq!(a.ci95_half_width(), 0.0);
    }

    #[test]
    fn single_sample_merges_are_bit_exact() {
        // One sample on each side, with dyadic values so every operation
        // is exact: the merged mean/M2 must match the sequential
        // accumulation bit for bit (the n=0/n=1 fast paths and Chan's
        // update agree exactly, not just approximately).
        let (x, y) = (0.25f64, 0.75f64);
        let mut left = RunningSummary::new();
        left.push(x);
        let mut right = RunningSummary::new();
        right.push(y);
        left.merge(&right);

        let mut seq = RunningSummary::new();
        seq.push(x);
        seq.push(y);

        assert_eq!(left.n(), seq.n());
        assert_eq!(left.mean().to_bits(), seq.mean().to_bits());
        assert_eq!(left.variance().to_bits(), seq.variance().to_bits());
    }

    #[test]
    fn merging_an_empty_copies_nothing_and_a_full_copies_bits() {
        // Empty ⊕ X is a bit-exact copy of X — the validation goldens rely
        // on aggregation being reproducible at the representation level.
        let mut src = RunningSummary::new();
        for x in [2.5, -1.25, 9.0, 0.5] {
            src.push(x);
        }
        let mut dst = RunningSummary::new();
        dst.merge(&src);
        assert_eq!(dst.n(), src.n());
        assert_eq!(dst.mean().to_bits(), src.mean().to_bits());
        assert_eq!(dst.variance().to_bits(), src.variance().to_bits());
    }

    proptest! {
        /// Merging two accumulators equals pushing everything into one.
        #[test]
        fn prop_merge_equals_concat(
            left in proptest::collection::vec(-1e3f64..1e3, 0..40),
            right in proptest::collection::vec(-1e3f64..1e3, 0..40),
        ) {
            let mut a = RunningSummary::new();
            for &x in &left { a.push(x); }
            let mut b = RunningSummary::new();
            for &x in &right { b.push(x); }
            a.merge(&b);

            let mut whole = RunningSummary::new();
            for &x in left.iter().chain(&right) { whole.push(x); }

            prop_assert_eq!(a.n(), whole.n());
            prop_assert!((a.mean() - whole.mean()).abs() < 1e-9);
            prop_assert!((a.variance() - whole.variance()).abs() < 1e-6);
        }
    }
}
