//! Integration tests: each response mechanism's effectiveness profile
//! from §5.2 of the paper, at a reduced scale.
//!
//! The paper's central finding is a *matrix*: which mechanism works
//! against which virus class. These tests pin that matrix.

use mpvsim::prelude::*;

const N: usize = 300;
const REPS: u64 = 3;
const SEED: u64 = 555;

fn reduced(virus: VirusProfile, horizon: SimDuration) -> ScenarioConfig {
    let mut c = ScenarioConfig::baseline(virus);
    c.population = PopulationConfig::paper_default(N);
    c.horizon = horizon;
    c
}

fn plan() -> ExperimentPlan {
    ExperimentPlan::new(REPS).master_seed(SEED).engine(EngineOptions::new().with_threads(4))
}

fn mean_final(config: &ScenarioConfig) -> f64 {
    plan().run(config).expect("valid scenario").final_infected.mean
}

fn with_response(base: &ScenarioConfig, response: ResponseConfig) -> ScenarioConfig {
    base.clone().with_response(response)
}

// ---------------------------------------------------------------------
// Point of reception
// ---------------------------------------------------------------------

#[test]
fn signature_scan_contains_slow_viruses() {
    // Paper Fig. 2: a 6 h scan delay holds Virus 1 to a few percent of
    // the baseline, and shorter delays contain more.
    let base = reduced(VirusProfile::virus1(), SimDuration::from_days(7));
    let baseline = mean_final(&base);
    let mut previous = f64::INFINITY;
    for delay_h in [24u64, 12, 6] {
        let scan = SignatureScan { activation_delay: SimDuration::from_hours(delay_h) };
        let contained =
            mean_final(&with_response(&base, ResponseConfig::none().with_signature_scan(scan)));
        assert!(
            contained < 0.4 * baseline,
            "{delay_h} h scan: {contained:.1} not well below baseline {baseline:.1}"
        );
        assert!(
            contained <= previous + 2.0,
            "shorter delay should contain at least as well ({delay_h} h: {contained:.1} vs {previous:.1})"
        );
        previous = contained;
    }
}

#[test]
fn signature_scan_fails_against_fast_virus3() {
    // Paper: "completely ineffectual against rapid viruses like Virus 3".
    let base = reduced(VirusProfile::virus3(), SimDuration::from_hours(24));
    let baseline = mean_final(&base);
    let scan = SignatureScan { activation_delay: SimDuration::from_hours(6) };
    let scanned =
        mean_final(&with_response(&base, ResponseConfig::none().with_signature_scan(scan)));
    assert!(
        scanned > 0.6 * baseline,
        "V3 should have saturated before the scan activates: {scanned:.1} vs baseline {baseline:.1}"
    );
}

#[test]
fn detection_slows_single_recipient_viruses_gradedly() {
    // Paper Fig. 3 shape: higher accuracy ⇒ slower spread. Checked on a
    // single-recipient fast virus so each blocked message removes real
    // coverage.
    let mut virus = VirusProfile::virus3();
    virus.name = "fast single-recipient".to_owned();
    let base = reduced(virus, SimDuration::from_hours(24));
    let baseline = mean_final(&base);

    let mut finals = Vec::new();
    for accuracy in [0.8, 0.95, 0.995] {
        let mut config = base.clone();
        config.detect_threshold = 5;
        config.response = ResponseConfig::none().with_detection(DetectionAlgorithm {
            accuracy,
            analysis_period: SimDuration::from_mins(30),
        });
        finals.push(mean_final(&config));
    }
    assert!(
        finals[0] > finals[1] && finals[1] > finals[2],
        "higher accuracy must slow the spread more: {finals:?} (baseline {baseline:.1})"
    );
    assert!(
        finals[2] < 0.5 * baseline,
        "99.5% detection should strongly contain: {:.1} vs {baseline:.1}",
        finals[2]
    );
}

#[test]
fn detection_is_muted_by_multi_recipient_redundancy() {
    // Our documented deviation from Fig. 3: Virus 2's 30 identical
    // full-contact-list sweeps per day mean ≤ 95 % per-message blocking
    // leaves enough surviving sweeps to cover the neighbourhood, so the
    // plateau is barely reduced.
    let base = reduced(VirusProfile::virus2(), SimDuration::from_days(5));
    let baseline = mean_final(&base);
    let detected = mean_final(&with_response(
        &base,
        ResponseConfig::none().with_detection(DetectionAlgorithm::with_accuracy(0.9)),
    ));
    assert!(
        detected > 0.7 * baseline,
        "multi-recipient redundancy defeats 90% per-message detection: {detected:.1} vs {baseline:.1}"
    );
}

// ---------------------------------------------------------------------
// Point of infection
// ---------------------------------------------------------------------

#[test]
fn education_halves_and_quarters_the_plateau_for_every_virus() {
    // Paper Fig. 4: the plateau scales with the eventual acceptance.
    for (virus, horizon) in [
        (VirusProfile::virus2(), SimDuration::from_days(5)),
        (VirusProfile::virus3(), SimDuration::from_hours(24)),
    ] {
        let name = virus.name.clone();
        let base = reduced(virus, horizon);
        let baseline = mean_final(&base);
        let half = mean_final(&with_response(
            &base,
            ResponseConfig::none().with_education(UserEducation { acceptance_scale: 0.5 }),
        ));
        let quarter = mean_final(&with_response(
            &base,
            ResponseConfig::none().with_education(UserEducation { acceptance_scale: 0.25 }),
        ));
        let half_ratio = half / baseline;
        let quarter_ratio = quarter / baseline;
        assert!(
            (0.35..=0.70).contains(&half_ratio),
            "{name}: half-education ratio {half_ratio:.2} not ≈ 0.5"
        );
        assert!(
            (0.15..=0.42).contains(&quarter_ratio),
            "{name}: quarter-education ratio {quarter_ratio:.2} not ≈ 0.25"
        );
        assert!(quarter < half, "{name}: stronger education must contain more");
    }
}

#[test]
fn immunization_effectiveness_ordered_by_development_then_rollout() {
    // Paper Fig. 5: development time dominates; rollout duration is
    // second-order within a development group.
    let base = reduced(VirusProfile::virus4(), SimDuration::from_days(10));
    let arm = |dev_h: u64, rollout_h: u64| {
        mean_final(&with_response(
            &base,
            ResponseConfig::none().with_immunization(Immunization::uniform(
                SimDuration::from_hours(dev_h),
                SimDuration::from_hours(rollout_h),
            )),
        ))
    };
    let baseline = mean_final(&base);
    let fast_dev_fast_roll = arm(24, 1);
    let fast_dev_slow_roll = arm(24, 24);
    let slow_dev_fast_roll = arm(48, 1);

    assert!(fast_dev_fast_roll < 0.5 * baseline, "prompt patching must contain the outbreak");
    assert!(
        fast_dev_slow_roll <= slow_dev_fast_roll + 2.0,
        "development time should dominate rollout time: 24h-dev/24h-roll {fast_dev_slow_roll:.1} \
         vs 48h-dev/1h-roll {slow_dev_fast_roll:.1}"
    );
    assert!(
        fast_dev_fast_roll <= fast_dev_slow_roll + 2.0,
        "within a development group, faster rollout should not hurt"
    );
}

#[test]
fn immunization_cannot_catch_virus3() {
    // Paper: "Virus 3 moves too fast for a patch to be developed and
    // deployed in time."
    let base = reduced(VirusProfile::virus3(), SimDuration::from_hours(30));
    let baseline = mean_final(&base);
    let patched = mean_final(&with_response(
        &base,
        ResponseConfig::none().with_immunization(Immunization::uniform(
            SimDuration::from_hours(24),
            SimDuration::from_hours(1),
        )),
    ));
    assert!(
        patched > 0.6 * baseline,
        "a 24 h patch arrives after V3 saturates: {patched:.1} vs baseline {baseline:.1}"
    );
}

// ---------------------------------------------------------------------
// Point of dissemination
// ---------------------------------------------------------------------

#[test]
fn monitoring_slows_virus3_with_longer_waits_stronger() {
    // Paper Fig. 6.
    let base = reduced(VirusProfile::virus3(), SimDuration::from_hours(24));
    let baseline = plan().run(&base).expect("valid");
    let t_base = baseline.mean_time_to_reach(50.0).expect("baseline reaches 50");

    let mut previous = f64::INFINITY;
    for wait_min in [15u64, 30, 60] {
        let config = with_response(
            &base,
            ResponseConfig::none()
                .with_monitoring(Monitoring::with_forced_wait(SimDuration::from_mins(wait_min))),
        );
        let result = plan().run(&config).expect("valid");
        // Slower or never reaching 50 infections.
        if let Some(t) = result.mean_time_to_reach(50.0) {
            assert!(
                t > 1.5 * t_base,
                "{wait_min} min wait: reached 50 at {t:.1} h, baseline {t_base:.1} h"
            );
        }
        let f = result.final_infected.mean;
        assert!(
            f <= previous + 5.0,
            "longer waits must contain at least as well ({wait_min} min: {f:.1} vs {previous:.1})"
        );
        previous = f;
    }
}

#[test]
fn monitoring_never_flags_slow_viruses() {
    // Paper: "ineffectual against Viruses 1, 2, and 4" — their volumes
    // look like normal traffic.
    for (virus, horizon) in [
        (VirusProfile::virus1(), SimDuration::from_days(4)),
        (VirusProfile::virus4(), SimDuration::from_days(4)),
    ] {
        let name = virus.name.clone();
        let base = reduced(virus, horizon);
        let config = with_response(
            &base,
            ResponseConfig::none()
                .with_monitoring(Monitoring::with_forced_wait(SimDuration::from_mins(60))),
        );
        let result = plan().run(&config).expect("valid");
        let flagged: u64 = result.runs.iter().map(|r| r.stats.throttled_phones).sum();
        assert_eq!(flagged, 0, "{name} sends ≈1 msg/h and must never be flagged");
    }
}

#[test]
fn blacklist_thresholds_order_containment_of_virus3() {
    // Paper Fig. 7: lower thresholds contain more.
    let base = reduced(VirusProfile::virus3(), SimDuration::from_hours(24));
    let baseline = mean_final(&base);
    let mut previous = 0.0f64;
    for threshold in [10u32, 30] {
        let contained = mean_final(&with_response(
            &base,
            ResponseConfig::none().with_blacklist(Blacklist { threshold }),
        ));
        assert!(
            contained >= previous - 3.0,
            "threshold {threshold}: containment should weaken with higher thresholds"
        );
        assert!(
            contained < 0.8 * baseline,
            "threshold {threshold}: {contained:.1} should be contained vs {baseline:.1}"
        );
        previous = contained;
    }
}

#[test]
fn blacklist_is_ineffective_against_multi_recipient_virus2() {
    // Paper: "completely ineffective for Virus 2 at any threshold".
    let base = reduced(VirusProfile::virus2(), SimDuration::from_days(5));
    let baseline = mean_final(&base);
    for threshold in [10u32, 40] {
        let contained = mean_final(&with_response(
            &base,
            ResponseConfig::none().with_blacklist(Blacklist { threshold }),
        ));
        assert!(
            contained > 0.75 * baseline,
            "threshold {threshold}: each message covers the whole contact list, \
             so counting messages cannot contain V2 ({contained:.1} vs {baseline:.1})"
        );
    }
}

#[test]
fn blacklist_low_threshold_restrains_virus1_high_does_not() {
    // Paper: threshold 10 is "somewhat effective" against Virus 1 while
    // "blacklisting at higher thresholds is ineffective". (Our model
    // contains more strongly at threshold 10 than the paper's ≈ 60 % —
    // see EXPERIMENTS.md — but the low-vs-high contrast is the claim.)
    let base = reduced(VirusProfile::virus1(), SimDuration::from_days(7));
    let baseline = mean_final(&base);
    let at_10 = mean_final(&with_response(
        &base,
        ResponseConfig::none().with_blacklist(Blacklist { threshold: 10 }),
    ));
    let at_40 = mean_final(&with_response(
        &base,
        ResponseConfig::none().with_blacklist(Blacklist { threshold: 40 }),
    ));
    assert!(
        at_10 < 0.85 * baseline,
        "threshold 10 should restrain V1: {at_10:.1} vs baseline {baseline:.1}"
    );
    assert!(
        at_40 > 2.0 * at_10.max(1.0) || at_40 > 0.6 * baseline,
        "threshold 40 (≈ half the contact list per phone) should be much weaker: \
         {at_40:.1} vs threshold-10 {at_10:.1}, baseline {baseline:.1}"
    );
}

// ---------------------------------------------------------------------
// Combination (paper §6 future work)
// ---------------------------------------------------------------------

#[test]
fn monitoring_buys_time_for_the_scan() {
    let base = reduced(VirusProfile::virus3(), SimDuration::from_hours(24));
    let monitoring = Monitoring::with_forced_wait(SimDuration::from_mins(30));
    let scan = SignatureScan { activation_delay: SimDuration::from_hours(6) };

    let scan_only =
        mean_final(&with_response(&base, ResponseConfig::none().with_signature_scan(scan)));
    let monitor_only =
        mean_final(&with_response(&base, ResponseConfig::none().with_monitoring(monitoring)));
    let both = mean_final(&with_response(
        &base,
        ResponseConfig::none().with_monitoring(monitoring).with_signature_scan(scan),
    ));

    assert!(
        both < scan_only && both <= monitor_only + 3.0,
        "combined defense ({both:.1}) should beat scan-only ({scan_only:.1}) and \
         monitoring-only ({monitor_only:.1})"
    );
}
