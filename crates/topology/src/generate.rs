//! Graph generators.
//!
//! The paper's contact network is a power-law random graph with mean
//! contact-list size 80 over 1000 phones (generated with NGCE). The
//! substitute here is a **Chung–Lu** expected-degree model: each node gets
//! a weight drawn from a truncated Pareto distribution scaled so the mean
//! weight equals the target mean degree, and each pair `{i, j}` is
//! connected independently with probability `min(1, w_i·w_j / Σw)`. The
//! expected degree of node `i` is then ≈ `w_i`, so the degree sequence
//! inherits the Pareto (power-law) tail and the mean lands on target.
//!
//! Erdős–Rényi, Watts–Strogatz, ring-lattice and complete generators are
//! provided for topology-sensitivity ablations.
//!
//! # Streaming generation
//!
//! Every generator is written as an *edge-emitter* feeding an [`EdgeSink`],
//! so the same emission stream can build either a per-node adjacency
//! [`Graph`] ([`GraphSpec::generate`]) or a flat [`CsrGraph`]
//! ([`GraphSpec::generate_csr`]) without ever materializing an intermediate
//! edge list. CSR construction is two-pass: pass one replays the stream
//! into a degree counter using a *clone* of the RNG, pass two replays it
//! into the prefix-summed row arrays using the real RNG — so the RNG ends
//! in exactly the state `generate` would have left it, and the per-row
//! neighbour order matches `Graph::add_edge` insertion order. Both
//! properties are what keep simulation trajectories bit-identical across
//! the two layouts.
//!
//! At or above [`FAST_PATH_MIN_NODES`] the pairwise O(n²) loops switch to
//! O(n + E) skip-sampling (Batagelj–Brandes for Erdős–Rényi, a
//! Miller–Hagberg sorted-weight walk for Chung–Lu) with an O(n log n)
//! calibration, making 10^6-node graphs tractable. The threshold is far
//! above every golden population, so regression trajectories never cross
//! paths with the fast samplers.

use std::collections::HashSet;

use rand::{Rng, RngExt};
use serde::{Deserialize, Serialize};

use crate::csr::CsrGraph;
use crate::error::TopologyError;
use crate::graph::{Graph, NodeId};

/// Default power-law exponent; email-address-book studies (the paper's
/// stated analogy for contact lists) report tail exponents near 2.
pub const DEFAULT_POWER_LAW_EXPONENT: f64 = 2.1;

/// Node count at which the random generators switch from the historical
/// O(n²) pair loops to O(n + E) skip-sampling. Everything the golden
/// trajectories cover (pop ≤ 1,000) sits far below this, so their RNG
/// draw sequences are untouched.
pub const FAST_PATH_MIN_NODES: usize = 8192;

/// A serializable description of a graph family + parameters.
///
/// ```rust
/// use mpvsim_topology::GraphSpec;
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(1);
/// let g = GraphSpec::erdos_renyi(200, 10.0).generate(&mut rng)?;
/// assert_eq!(g.node_count(), 200);
/// # Ok::<(), mpvsim_topology::TopologyError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum GraphSpec {
    /// Chung–Lu power-law graph with the given node count, target mean
    /// degree and tail exponent.
    PowerLaw {
        /// Number of nodes.
        n: usize,
        /// Target mean degree (the paper uses 80).
        mean_degree: f64,
        /// Power-law tail exponent (> 1).
        exponent: f64,
    },
    /// Erdős–Rényi `G(n, p)` with `p` chosen to hit the target mean degree.
    ErdosRenyi {
        /// Number of nodes.
        n: usize,
        /// Target mean degree.
        mean_degree: f64,
    },
    /// Watts–Strogatz small-world graph: ring lattice with `k` neighbours
    /// per node (k even), each edge rewired with probability `beta`.
    WattsStrogatz {
        /// Number of nodes.
        n: usize,
        /// Lattice degree (even, `< n`).
        k: usize,
        /// Rewiring probability in `[0, 1]`.
        beta: f64,
    },
    /// Ring lattice: node `i` linked to its `k/2` nearest neighbours on
    /// each side.
    Ring {
        /// Number of nodes.
        n: usize,
        /// Lattice degree (even, `< n`).
        k: usize,
    },
    /// The complete graph on `n` nodes.
    Complete {
        /// Number of nodes.
        n: usize,
    },
}

impl GraphSpec {
    /// Power-law spec with the default exponent
    /// ([`DEFAULT_POWER_LAW_EXPONENT`]).
    pub fn power_law(n: usize, mean_degree: f64) -> Self {
        GraphSpec::PowerLaw { n, mean_degree, exponent: DEFAULT_POWER_LAW_EXPONENT }
    }

    /// Power-law spec with an explicit tail exponent.
    pub fn power_law_with_exponent(n: usize, mean_degree: f64, exponent: f64) -> Self {
        GraphSpec::PowerLaw { n, mean_degree, exponent }
    }

    /// Erdős–Rényi spec.
    pub fn erdos_renyi(n: usize, mean_degree: f64) -> Self {
        GraphSpec::ErdosRenyi { n, mean_degree }
    }

    /// Watts–Strogatz spec.
    pub fn watts_strogatz(n: usize, k: usize, beta: f64) -> Self {
        GraphSpec::WattsStrogatz { n, k, beta }
    }

    /// Ring-lattice spec.
    pub fn ring(n: usize, k: usize) -> Self {
        GraphSpec::Ring { n, k }
    }

    /// Complete-graph spec.
    pub fn complete(n: usize) -> Self {
        GraphSpec::Complete { n }
    }

    /// The node count this spec will produce.
    pub fn node_count(&self) -> usize {
        match *self {
            GraphSpec::PowerLaw { n, .. }
            | GraphSpec::ErdosRenyi { n, .. }
            | GraphSpec::WattsStrogatz { n, .. }
            | GraphSpec::Ring { n, .. }
            | GraphSpec::Complete { n } => n,
        }
    }

    /// Validates the parameters without generating.
    ///
    /// # Errors
    ///
    /// Returns the violation a call to [`GraphSpec::generate`] would hit.
    pub fn validate(&self) -> Result<(), TopologyError> {
        let n = self.node_count();
        if n == 0 {
            return Err(TopologyError::EmptyPopulation);
        }
        match *self {
            GraphSpec::PowerLaw { mean_degree, exponent, .. } => {
                check_mean_degree(n, mean_degree)?;
                if exponent <= 1.0 || !exponent.is_finite() {
                    return Err(TopologyError::InvalidParameter(format!(
                        "power-law exponent must be finite and > 1, got {exponent}"
                    )));
                }
                Ok(())
            }
            GraphSpec::ErdosRenyi { mean_degree, .. } => check_mean_degree(n, mean_degree),
            GraphSpec::WattsStrogatz { k, beta, .. } => {
                check_lattice_degree(n, k)?;
                if !(0.0..=1.0).contains(&beta) || !beta.is_finite() {
                    return Err(TopologyError::InvalidProbability { value: beta, name: "beta" });
                }
                Ok(())
            }
            GraphSpec::Ring { k, .. } => check_lattice_degree(n, k),
            GraphSpec::Complete { .. } => Ok(()),
        }
    }

    /// Generates a graph from this spec using `rng`.
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError`] when the parameters are invalid (see
    /// [`GraphSpec::validate`]).
    pub fn generate<R: Rng + ?Sized>(&self, rng: &mut R) -> Result<Graph, TopologyError> {
        self.validate()?;
        let mut sink = GraphSink { graph: Graph::with_nodes(self.node_count()) };
        self.emit(rng, &mut sink);
        debug_assert!(sink.graph.validate().is_ok());
        Ok(sink.graph)
    }

    /// Generates the graph straight into CSR form, never materializing the
    /// per-node `Vec` adjacency or an intermediate edge list.
    ///
    /// Pass one counts degrees with a clone of `rng`; pass two fills the
    /// prefix-summed rows with the real `rng`, so the caller's RNG advances
    /// exactly as it would under [`GraphSpec::generate`] and each CSR row
    /// holds its neighbours in the same order `Graph::add_edge` would have
    /// stored them.
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError`] for invalid parameters, or when the graph
    /// exceeds `u32` CSR index capacity.
    pub fn generate_csr<R: Rng + Clone>(&self, rng: &mut R) -> Result<CsrGraph, TopologyError> {
        self.validate()?;
        let n = self.node_count();
        if n >= u32::MAX as usize {
            return Err(TopologyError::InvalidParameter(format!(
                "CSR node ids are u32; n = {n} is too large"
            )));
        }
        let mut degrees = vec![0u32; n];
        {
            let mut probe = rng.clone();
            let mut sink = DegreeSink { degrees: &mut degrees };
            self.emit(&mut probe, &mut sink);
        }
        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0u32);
        let mut acc: u64 = 0;
        for &d in &degrees {
            acc += u64::from(d);
            if acc >= u64::from(u32::MAX) {
                return Err(TopologyError::InvalidParameter(
                    "graph too large for u32 CSR offsets".into(),
                ));
            }
            offsets.push(acc as u32);
        }
        drop(degrees);
        let mut cursors = offsets[..n].to_vec();
        let mut targets = vec![0u32; acc as usize];
        {
            let mut sink = CsrFillSink { cursors: &mut cursors, targets: &mut targets };
            self.emit(rng, &mut sink);
        }
        let g = CsrGraph::from_parts(offsets, targets, (acc / 2) as usize);
        debug_assert!(g.validate().is_ok());
        Ok(g)
    }

    /// Replays this spec's edge stream into `sink`. Single source of truth
    /// for both output layouts: any change to emission order or RNG usage
    /// automatically applies to `generate` and `generate_csr` alike.
    fn emit<R: Rng + ?Sized, S: EdgeSink>(&self, rng: &mut R, sink: &mut S) {
        match *self {
            GraphSpec::PowerLaw { n, mean_degree, exponent } => {
                emit_chung_lu(n, mean_degree, exponent, rng, sink);
            }
            GraphSpec::ErdosRenyi { n, mean_degree } => emit_erdos_renyi(n, mean_degree, rng, sink),
            GraphSpec::WattsStrogatz { n, k, beta } => emit_watts_strogatz(n, k, beta, rng, sink),
            GraphSpec::Ring { n, k } => emit_ring_lattice(n, k, sink),
            GraphSpec::Complete { n } => emit_complete(n, sink),
        }
    }
}

fn check_mean_degree(n: usize, mean_degree: f64) -> Result<(), TopologyError> {
    if !mean_degree.is_finite() || mean_degree < 0.0 || mean_degree > (n - 1) as f64 {
        Err(TopologyError::InvalidMeanDegree { n, mean_degree })
    } else {
        Ok(())
    }
}

fn check_lattice_degree(n: usize, k: usize) -> Result<(), TopologyError> {
    if !k.is_multiple_of(2) {
        Err(TopologyError::InvalidParameter(format!("lattice degree k = {k} must be even")))
    } else if k >= n {
        Err(TopologyError::InvalidParameter(format!("lattice degree k = {k} must be < n = {n}")))
    } else {
        Ok(())
    }
}

/// Receives each undirected edge of a generator's stream exactly once.
/// No generator emits self-loops or duplicate pairs, so sinks may store
/// both directions unconditionally.
trait EdgeSink {
    fn edge(&mut self, a: u32, b: u32);
}

/// Builds the historical adjacency-list layout.
struct GraphSink {
    graph: Graph,
}

impl EdgeSink for GraphSink {
    fn edge(&mut self, a: u32, b: u32) {
        let inserted = self.graph.add_edge(NodeId(a as usize), NodeId(b as usize));
        debug_assert!(inserted, "generators must not emit duplicate edges");
    }
}

/// CSR pass one: per-node degree counts.
struct DegreeSink<'a> {
    degrees: &'a mut [u32],
}

impl EdgeSink for DegreeSink<'_> {
    fn edge(&mut self, a: u32, b: u32) {
        self.degrees[a as usize] += 1;
        self.degrees[b as usize] += 1;
    }
}

/// CSR pass two: writes both directed entries at their row cursors.
struct CsrFillSink<'a> {
    cursors: &'a mut [u32],
    targets: &'a mut [u32],
}

impl EdgeSink for CsrFillSink<'_> {
    fn edge(&mut self, a: u32, b: u32) {
        self.targets[self.cursors[a as usize] as usize] = b;
        self.cursors[a as usize] += 1;
        self.targets[self.cursors[b as usize] as usize] = a;
        self.cursors[b as usize] += 1;
    }
}

/// Chung–Lu expected-degree power-law stream.
fn emit_chung_lu<R: Rng + ?Sized, S: EdgeSink>(
    n: usize,
    mean_degree: f64,
    exponent: f64,
    rng: &mut R,
    sink: &mut S,
) {
    if mean_degree == 0.0 || n < 2 {
        return;
    }
    // Pareto(shape = exponent - 1, min = 1) weights.
    let shape = exponent - 1.0;
    let mut weights: Vec<f64> = (0..n)
        .map(|_| {
            let u: f64 = rng.random();
            (1.0 - u).powf(-1.0 / shape)
        })
        .collect();
    // Scale to the target mean.
    let mean_w: f64 = weights.iter().sum::<f64>() / n as f64;
    let scale = mean_degree / mean_w;
    for w in &mut weights {
        *w *= scale;
    }
    // Truncate the heaviest weights so no single pair dominates with
    // probability 1 everywhere (w_i w_j / S <= 1 for the bulk).
    let total: f64 = weights.iter().sum();
    let cap = total.sqrt();
    for w in &mut weights {
        if *w > cap {
            *w = cap;
        }
    }
    let total: f64 = weights.iter().sum();
    // Clipping `min(1, ·)` plus the cap removes probability mass, so the
    // raw Chung–Lu rule undershoots the target mean degree. Binary-search a
    // global factor c in p_ij = min(1, c·w_i·w_j/Σw) so that the *expected*
    // mean degree equals the target.
    let c = calibrate_chung_lu(&weights, total, mean_degree);
    if n < FAST_PATH_MIN_NODES {
        for i in 0..n {
            for j in (i + 1)..n {
                let p = (c * weights[i] * weights[j] / total).min(1.0);
                if p > 0.0 && rng.random::<f64>() < p {
                    sink.edge(i as u32, j as u32);
                }
            }
        }
    } else {
        emit_chung_lu_skip(&weights, total, c, rng, sink);
    }
}

/// Binary-searches the Chung–Lu clipping compensation factor `c`.
///
/// Below [`FAST_PATH_MIN_NODES`] the expectation is evaluated with the
/// historical O(n²) pair loop (bit-identical sums); above it, with an
/// O(n log n) sorted-weight two-pointer evaluator.
fn calibrate_chung_lu(weights: &[f64], total: f64, mean_degree: f64) -> f64 {
    let n = weights.len();
    let target_sum = mean_degree * n as f64;
    if n < FAST_PATH_MIN_NODES {
        let expected_degree_sum = |c: f64| -> f64 {
            let mut s = 0.0;
            for i in 0..n {
                for j in (i + 1)..n {
                    s += (c * weights[i] * weights[j] / total).min(1.0);
                }
            }
            2.0 * s
        };
        bisect_compensation(expected_degree_sum, target_sum)
    } else {
        // Sort descending; for a fixed c the clipped pairs of row i form a
        // prefix of the sorted array, and that prefix only shrinks as i
        // advances — one two-pointer sweep per evaluation.
        let mut sorted = weights.to_vec();
        sorted.sort_unstable_by(|a, b| b.partial_cmp(a).expect("weights are finite"));
        let mut suffix = vec![0.0f64; n + 1];
        for i in (0..n).rev() {
            suffix[i] = suffix[i + 1] + sorted[i];
        }
        let expected_degree_sum = move |c: f64| -> f64 {
            let mut s = 0.0;
            let mut b = n;
            for i in 0..n {
                let clip_at = total / (c * sorted[i]);
                while b > 0 && sorted[b - 1] < clip_at {
                    b -= 1;
                }
                let clipped_end = b.max(i + 1);
                s += (clipped_end - (i + 1)) as f64;
                s += c * sorted[i] * suffix[clipped_end] / total;
            }
            2.0 * s
        };
        bisect_compensation(expected_degree_sum, target_sum)
    }
}

fn bisect_compensation(expected_degree_sum: impl Fn(f64) -> f64, target_sum: f64) -> f64 {
    let (mut lo, mut hi) = (0.0f64, 1.0f64);
    while expected_degree_sum(hi) < target_sum && hi < 1e6 {
        lo = hi;
        hi *= 2.0;
    }
    for _ in 0..30 {
        let mid = 0.5 * (lo + hi);
        if expected_degree_sum(mid) < target_sum {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    0.5 * (lo + hi)
}

/// Miller–Hagberg skip-sampling over descending weights: within a row the
/// pair probability is monotone non-increasing, so a geometric jump under
/// the row's current upper bound `p`, followed by an accept test with the
/// exact probability `q ≤ p`, visits each candidate pair O(1) amortized.
fn emit_chung_lu_skip<R: Rng + ?Sized, S: EdgeSink>(
    weights: &[f64],
    total: f64,
    c: f64,
    rng: &mut R,
    sink: &mut S,
) {
    let n = weights.len();
    let mut order: Vec<u32> = (0..n as u32).collect();
    // (weight desc, original index asc) — a total order, so the emission
    // stream is deterministic even with tied weights.
    order.sort_unstable_by(|&a, &b| {
        weights[b as usize]
            .partial_cmp(&weights[a as usize])
            .expect("weights are finite")
            .then(a.cmp(&b))
    });
    let seq: Vec<f64> = order.iter().map(|&i| weights[i as usize]).collect();
    for u in 0..n.saturating_sub(1) {
        let mut v = u + 1;
        let mut p = (c * seq[u] * seq[v] / total).min(1.0);
        while v < n && p > 0.0 {
            if p < 1.0 {
                let r: f64 = rng.random();
                let skip = (r.ln() / (1.0 - p).ln()).floor();
                // A NaN skip (degenerate p) must break too.
                if skip.is_nan() || skip >= (n - v) as f64 {
                    break;
                }
                v += skip as usize;
            }
            let q = (c * seq[u] * seq[v] / total).min(1.0);
            if rng.random::<f64>() < q / p {
                sink.edge(order[u], order[v]);
            }
            p = q;
            v += 1;
        }
    }
}

/// Erdős–Rényi `G(n, p)` stream with `p = mean_degree / (n - 1)`.
fn emit_erdos_renyi<R: Rng + ?Sized, S: EdgeSink>(
    n: usize,
    mean_degree: f64,
    rng: &mut R,
    sink: &mut S,
) {
    if n < 2 {
        return;
    }
    let p = mean_degree / (n - 1) as f64;
    if n < FAST_PATH_MIN_NODES {
        for i in 0..n {
            for j in (i + 1)..n {
                if rng.random::<f64>() < p {
                    sink.edge(i as u32, j as u32);
                }
            }
        }
        return;
    }
    if p <= 0.0 {
        return;
    }
    if p >= 1.0 {
        emit_complete(n, sink);
        return;
    }
    // Batagelj–Brandes: geometric skips through the row-major pair
    // sequence, one RNG draw per *edge* instead of per pair.
    let log_q = (1.0 - p).ln();
    let mut v: usize = 1;
    let mut w: i64 = -1;
    while v < n {
        let r: f64 = rng.random();
        let skip = ((1.0 - r).ln() / log_q).floor();
        // A NaN skip (degenerate p) must break too.
        if skip.is_nan() || skip >= 1e18 {
            break;
        }
        w += 1 + skip as i64;
        while v < n && w >= v as i64 {
            w -= v as i64;
            v += 1;
        }
        if v < n {
            sink.edge(w as u32, v as u32);
        }
    }
}

/// Ring lattice stream: `i ~ i ± 1..=k/2 (mod n)`.
fn emit_ring_lattice<S: EdgeSink>(n: usize, k: usize, sink: &mut S) {
    for i in 0..n {
        for d in 1..=(k / 2) {
            let j = (i + d) % n;
            sink.edge(i as u32, j as u32);
        }
    }
}

/// Watts–Strogatz stream: ring lattice, then each lattice edge `(i, i+d)`
/// is rewired to `(i, random)` with probability `beta`, skipping rewires
/// that would create self-loops or parallel edges.
fn emit_watts_strogatz<R: Rng + ?Sized, S: EdgeSink>(
    n: usize,
    k: usize,
    beta: f64,
    rng: &mut R,
    sink: &mut S,
) {
    // Edge set as ordered pairs (low, high) for cheap membership tests.
    let mut edges: HashSet<(usize, usize)> = HashSet::new();
    let norm = |a: usize, b: usize| if a < b { (a, b) } else { (b, a) };
    for i in 0..n {
        for d in 1..=(k / 2) {
            edges.insert(norm(i, (i + d) % n));
        }
    }
    // Rewire in deterministic lattice order.
    for i in 0..n {
        for d in 1..=(k / 2) {
            let j = (i + d) % n;
            let key = norm(i, j);
            if !edges.contains(&key) {
                continue; // already rewired away by an earlier step
            }
            if rng.random::<f64>() < beta {
                let target = rng.random_range(0..n);
                let new_key = norm(i, target);
                if target != i && !edges.contains(&new_key) {
                    edges.remove(&key);
                    edges.insert(new_key);
                }
            }
        }
    }
    let mut sorted: Vec<_> = edges.into_iter().collect();
    sorted.sort_unstable(); // deterministic emission order
    for (a, b) in sorted {
        sink.edge(a as u32, b as u32);
    }
}

/// The complete graph stream.
fn emit_complete<S: EdgeSink>(n: usize, sink: &mut S) {
    for i in 0..n {
        for j in (i + 1)..n {
            sink.edge(i as u32, j as u32);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    #[test]
    fn power_law_hits_target_mean_degree() {
        let g = GraphSpec::power_law(1000, 80.0).generate(&mut rng(1)).unwrap();
        assert_eq!(g.node_count(), 1000);
        let mean = g.mean_degree();
        assert!((mean - 80.0).abs() < 8.0, "mean degree {mean} not ≈ 80");
        assert!(g.validate().is_ok());
    }

    #[test]
    fn power_law_has_heavy_tail() {
        let g = GraphSpec::power_law(1000, 20.0).generate(&mut rng(2)).unwrap();
        let max_deg = g.nodes().map(|v| g.degree(v)).max().unwrap();
        let mean = g.mean_degree();
        // A power-law graph's max degree is far above the mean; an ER
        // graph with the same mean would have max ≈ mean + 5σ ≈ 2× mean.
        assert!(
            (max_deg as f64) > 3.0 * mean,
            "max degree {max_deg} too close to mean {mean} for a heavy tail"
        );
    }

    #[test]
    fn erdos_renyi_hits_target_mean_degree() {
        let g = GraphSpec::erdos_renyi(1000, 12.0).generate(&mut rng(3)).unwrap();
        let mean = g.mean_degree();
        assert!((mean - 12.0).abs() < 1.5, "mean degree {mean} not ≈ 12");
    }

    #[test]
    fn ring_is_exactly_regular() {
        let g = GraphSpec::ring(20, 4).generate(&mut rng(4)).unwrap();
        for v in g.nodes() {
            assert_eq!(g.degree(v), 4);
        }
        assert_eq!(g.edge_count(), 40);
    }

    #[test]
    fn complete_graph_edge_count() {
        let g = GraphSpec::complete(10).generate(&mut rng(5)).unwrap();
        assert_eq!(g.edge_count(), 45);
        for v in g.nodes() {
            assert_eq!(g.degree(v), 9);
        }
    }

    #[test]
    fn watts_strogatz_preserves_edge_count() {
        let g = GraphSpec::watts_strogatz(100, 6, 0.3).generate(&mut rng(6)).unwrap();
        // Rewiring moves edges but (apart from skipped conflicts) does not
        // remove them; edge count stays within a few of the lattice count.
        let lattice_edges = 100 * 3;
        assert!(g.edge_count() <= lattice_edges);
        assert!(g.edge_count() >= lattice_edges - 20);
        assert!(g.validate().is_ok());
    }

    #[test]
    fn watts_strogatz_beta_zero_is_lattice() {
        let ws = GraphSpec::watts_strogatz(30, 4, 0.0).generate(&mut rng(7)).unwrap();
        let ring = GraphSpec::ring(30, 4).generate(&mut rng(8)).unwrap();
        let mut a: Vec<_> = ws.edges().collect();
        let mut b: Vec<_> = ring.edges().collect();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let spec = GraphSpec::power_law(300, 15.0);
        let g1 = spec.generate(&mut rng(42)).unwrap();
        let g2 = spec.generate(&mut rng(42)).unwrap();
        let e1: Vec<_> = g1.edges().collect();
        let e2: Vec<_> = g2.edges().collect();
        assert_eq!(e1, e2);
        let g3 = spec.generate(&mut rng(43)).unwrap();
        assert_ne!(e1, g3.edges().collect::<Vec<_>>());
    }

    #[test]
    fn zero_mean_degree_gives_empty_graph() {
        let g = GraphSpec::erdos_renyi(50, 0.0).generate(&mut rng(9)).unwrap();
        assert_eq!(g.edge_count(), 0);
        let g = GraphSpec::power_law(50, 0.0).generate(&mut rng(10)).unwrap();
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn invalid_specs_rejected() {
        assert_eq!(GraphSpec::power_law(0, 5.0).validate(), Err(TopologyError::EmptyPopulation));
        assert!(matches!(
            GraphSpec::erdos_renyi(10, 20.0).validate(),
            Err(TopologyError::InvalidMeanDegree { .. })
        ));
        assert!(matches!(
            GraphSpec::erdos_renyi(10, f64::NAN).validate(),
            Err(TopologyError::InvalidMeanDegree { .. })
        ));
        assert!(matches!(
            GraphSpec::watts_strogatz(10, 3, 0.5).validate(),
            Err(TopologyError::InvalidParameter(_))
        ));
        assert!(matches!(
            GraphSpec::watts_strogatz(10, 4, 1.5).validate(),
            Err(TopologyError::InvalidProbability { .. })
        ));
        assert!(matches!(
            GraphSpec::ring(10, 10).validate(),
            Err(TopologyError::InvalidParameter(_))
        ));
        assert!(matches!(
            GraphSpec::power_law_with_exponent(10, 3.0, 1.0).validate(),
            Err(TopologyError::InvalidParameter(_))
        ));
    }

    #[test]
    fn single_node_specs_degenerate_gracefully() {
        let g = GraphSpec::complete(1).generate(&mut rng(11)).unwrap();
        assert_eq!(g.node_count(), 1);
        assert_eq!(g.edge_count(), 0);
        let g = GraphSpec::erdos_renyi(1, 0.0).generate(&mut rng(12)).unwrap();
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn node_count_accessor() {
        assert_eq!(GraphSpec::power_law(7, 2.0).node_count(), 7);
        assert_eq!(GraphSpec::complete(3).node_count(), 3);
        assert_eq!(GraphSpec::ring(9, 2).node_count(), 9);
        assert_eq!(GraphSpec::watts_strogatz(11, 2, 0.1).node_count(), 11);
        assert_eq!(GraphSpec::erdos_renyi(13, 2.0).node_count(), 13);
    }

    // ------------------------------------------------------------------
    // Streaming CSR equivalence
    // ------------------------------------------------------------------

    /// Asserts `generate_csr` reproduces `generate` byte-for-byte: same
    /// rows in the same order, and the caller's RNG left in the same state.
    fn assert_csr_matches(spec: &GraphSpec, seed: u64) {
        let mut materialized_rng = rng(seed);
        let g = spec.generate(&mut materialized_rng).unwrap();
        let mut streaming_rng = rng(seed);
        let csr = spec.generate_csr(&mut streaming_rng).unwrap();
        assert_eq!(csr.node_count(), g.node_count(), "{spec:?}");
        assert_eq!(csr.edge_count(), g.edge_count(), "{spec:?}");
        for i in 0..g.node_count() {
            let want: Vec<u32> = g.neighbors(NodeId(i)).iter().map(|v| v.0 as u32).collect();
            assert_eq!(csr.neighbors(i as u32), want.as_slice(), "row {i} of {spec:?}");
        }
        assert_eq!(
            materialized_rng.random::<u64>(),
            streaming_rng.random::<u64>(),
            "RNG state diverged after generating {spec:?}"
        );
    }

    #[test]
    fn csr_matches_materialized_all_generators() {
        for seed in [1, 2, 3] {
            assert_csr_matches(&GraphSpec::power_law(120, 12.0), seed);
            assert_csr_matches(&GraphSpec::erdos_renyi(120, 8.0), seed);
            assert_csr_matches(&GraphSpec::watts_strogatz(120, 6, 0.3), seed);
            assert_csr_matches(&GraphSpec::ring(31, 4), seed);
            assert_csr_matches(&GraphSpec::complete(17), seed);
        }
    }

    #[test]
    fn csr_handles_isolated_and_degree_zero_nodes() {
        // Whole-graph degree zero...
        assert_csr_matches(&GraphSpec::erdos_renyi(40, 0.0), 9);
        assert_csr_matches(&GraphSpec::power_law(40, 0.0), 9);
        assert_csr_matches(&GraphSpec::complete(1), 9);
        // ...and sparse graphs with genuinely isolated nodes.
        let csr = GraphSpec::erdos_renyi(60, 0.1).generate_csr(&mut rng(9)).unwrap();
        assert!((0..60u32).any(|v| csr.degree(v) == 0), "expected an isolated node");
        assert_csr_matches(&GraphSpec::erdos_renyi(60, 0.1), 9);
    }

    #[test]
    fn fast_path_hits_target_mean_degree() {
        // Exactly at the threshold → skip-sampling path in both layouts.
        let n = FAST_PATH_MIN_NODES;
        let g = GraphSpec::erdos_renyi(n, 6.0).generate_csr(&mut rng(21)).unwrap();
        assert!((g.mean_degree() - 6.0).abs() < 0.5, "ER mean {}", g.mean_degree());
        let g = GraphSpec::power_law(n, 10.0).generate_csr(&mut rng(22)).unwrap();
        assert!((g.mean_degree() - 10.0).abs() < 1.5, "CL mean {}", g.mean_degree());
        let max_deg = (0..n as u32).map(|v| g.degree(v)).max().unwrap();
        assert!((max_deg as f64) > 3.0 * g.mean_degree(), "no heavy tail: max {max_deg}");
        assert!(g.validate().is_ok());
    }

    #[test]
    fn fast_path_csr_matches_materialized() {
        // Above the threshold both layouts still share one emission stream.
        assert_csr_matches(&GraphSpec::erdos_renyi(FAST_PATH_MIN_NODES, 3.0), 7);
        assert_csr_matches(&GraphSpec::power_law(FAST_PATH_MIN_NODES, 4.0), 7);
    }

    proptest! {
        /// Streaming CSR generation is byte-identical to the materialized
        /// path for every generator family at small n.
        #[test]
        fn prop_csr_equivalent_all_families(
            seed in 0u64..500,
            n in 2usize..40,
            mean_raw in 0.0f64..10.0,
            k_half in 1usize..4,
            beta in 0.0f64..1.0,
        ) {
            let mean = mean_raw.min((n - 1) as f64);
            assert_csr_matches(&GraphSpec::power_law(n, mean), seed);
            assert_csr_matches(&GraphSpec::erdos_renyi(n, mean), seed);
            let k = 2 * k_half;
            if k < n {
                assert_csr_matches(&GraphSpec::ring(n, k), seed);
                assert_csr_matches(&GraphSpec::watts_strogatz(n, k, beta), seed);
            }
            assert_csr_matches(&GraphSpec::complete(n), seed);
        }
    }
}
